#!/usr/bin/env python
"""Three ways to parallelise / amortise streaming partitioning.

Compares, on the same graph and stream:

1. **Independent instances + spotlight** (the paper's model): each of z
   partitioners owns a chunk and a private vertex cache, filling its own
   exclusive partitions.
2. **HoVerCut-style batched shared state**: workers share one vertex
   cache, synchronised at batch boundaries — fresher information, some
   staleness within a batch.
3. **Restreaming**: one instance, two passes — the second pass scores
   with exact degrees, paying double latency.

Run:  python examples/parallel_modes.py
"""

from repro import (
    HDRFPartitioner,
    ParallelLoader,
    RestreamingDriver,
    community_powerlaw_graph,
    locally_shuffled,
)
from repro.partitioning.hovercut import HoverCutPartitioner

K = 16
Z = 4


def hdrf(parts, clock):
    return HDRFPartitioner(parts, clock=clock)


def hdrf_policy(state, clock):
    return HDRFPartitioner(state.partitions, clock=clock, state=state)


def main() -> None:
    graph = community_powerlaw_graph(num_communities=12, community_size=30,
                                     intra_p=0.5, overlay_m=3, seed=8)
    # Realistic file order: coarse locality with local disorder.  (On a
    # *perfectly* adjacency-ordered stream HDRF degenerates: the
    # replication reward overwhelms its fixed balance weight and all
    # edges pile onto one partition.)
    stream = locally_shuffled(graph.edges(), buffer_size=256, seed=8)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"k={K} partitions\n")
    print(f"{'mode':<34} {'replication':>11} {'latency':>10}")

    spotlight = ParallelLoader(hdrf, partitions=list(range(K)),
                               num_instances=Z, spread=K // Z).run(stream)
    print(f"{'independent + spotlight (z=4)':<34} "
          f"{spotlight.replication_degree:>11.3f} "
          f"{spotlight.latency_ms:>8.1f}ms")

    max_spread = ParallelLoader(hdrf, partitions=list(range(K)),
                                num_instances=Z, spread=K).run(stream)
    print(f"{'independent, maximal spread':<34} "
          f"{max_spread.replication_degree:>11.3f} "
          f"{max_spread.latency_ms:>8.1f}ms")

    hover = HoverCutPartitioner(range(K), hdrf_policy, num_workers=Z,
                                batch_size=64).partition_stream(stream)
    print(f"{'HoVerCut shared state (4 workers)':<34} "
          f"{hover.replication_degree:>11.3f} "
          f"{hover.latency_ms:>8.1f}ms")

    restream = RestreamingDriver(hdrf, list(range(K)), passes=2).run(stream)
    print(f"{'restreaming (1 instance, 2 pass)':<34} "
          f"{restream.replication_degree:>11.3f} "
          f"{restream.latency_ms:>8.1f}ms")

    print("\nSpotlight recovers most of the quality of shared state "
          "without sharing anything;\nmaximal spread shows why prior "
          "systems' parallel loading underperforms (Fig. 8).")


if __name__ == "__main__":
    main()
