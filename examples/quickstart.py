#!/usr/bin/env python
"""Quickstart: partition a graph with ADWISE and inspect the result.

Builds a small power-law graph, streams its edges through ADWISE with a
latency preference, and compares the outcome with the classic single-edge
streaming baselines — the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro import (
    AdwisePartitioner,
    DBHPartitioner,
    HashPartitioner,
    HDRFPartitioner,
    barabasi_albert_graph,
    open_session,
    shuffled,
)

NUM_PARTITIONS = 8


def main() -> None:
    # 1. A graph to partition.  Any iterable of (u, v) pairs works; here we
    #    generate a 1000-vertex power-law graph.
    graph = barabasi_albert_graph(n=1000, m=6, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. An edge stream.  Streaming partitioners make one pass; the order
    #    matters, so we fix a seed for reproducibility.
    def stream():
        return shuffled(graph.edges(), seed=7)

    # 3. Partition with ADWISE.  The latency preference L (milliseconds of
    #    simulated partitioning time) is the quality knob: higher L lets
    #    the window grow, producing fewer vertex replicas.
    print(f"\n{'algorithm':<22} {'replication':>11} {'imbalance':>9} "
          f"{'latency':>10}")
    for make in (
            lambda: HashPartitioner(range(NUM_PARTITIONS)),
            lambda: DBHPartitioner(range(NUM_PARTITIONS)),
            lambda: HDRFPartitioner(range(NUM_PARTITIONS)),
            lambda: AdwisePartitioner(range(NUM_PARTITIONS),
                                      latency_preference_ms=150.0),
            lambda: AdwisePartitioner(range(NUM_PARTITIONS),
                                      latency_preference_ms=500.0),
    ):
        partitioner = make()
        result = partitioner.partition_stream(stream())
        label = result.algorithm
        if isinstance(partitioner, AdwisePartitioner):
            label += f" (L={partitioner.latency_preference_ms:.0f}ms)"
        print(f"{label:<22} {result.replication_degree:>11.3f} "
              f"{result.imbalance:>9.3f} {result.latency_ms:>8.1f}ms")

    # 4. The same run through the session facade — the incremental API
    #    the service daemon speaks.  Edges arrive in batches, and the
    #    session can be queried while the stream is still open.
    session = open_session(algorithm="adwise", partitions=NUM_PARTITIONS,
                           expected_edges=graph.num_edges,
                           latency_preference_ms=500.0)
    edges = list(stream())
    for start in range(0, len(edges), 256):
        session.ingest(edges[start:start + 256])
    mid_stats = session.stats()
    print(f"\nlive session: {mid_stats.edges_ingested} edges ingested, "
          f"{mid_stats.buffered_edges} still windowed, "
          f"window size {mid_stats.window_size}")
    result = session.finalize()

    # 5. Inspect one assignment.
    some_edge = next(iter(result.assignments))
    print(f"edge {tuple(some_edge)} -> partition "
          f"{result.partition_of(some_edge)}")
    print(f"replica set of vertex {some_edge.u}: "
          f"{sorted(result.state.replicas(some_edge.u))}")
    print(f"window grew to {result.extras['max_window']:.0f} edges, "
          f"final lambda {result.extras['final_lambda']:.2f}")


if __name__ == "__main__":
    main()
