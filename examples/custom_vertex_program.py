#!/usr/bin/env python
"""Writing your own vertex program for the processing-engine simulator.

Implements triangle counting as a Pregel-style vertex program, runs it on
two different partitionings of the same graph, and shows that (a) the
algorithm's *result* is identical — the engine computes on the logical
graph — while (b) the *simulated latency* differs, because a better
partitioning means fewer replica-synchronisation messages.

Run:  python examples/custom_vertex_program.py
"""

from repro import (
    AdwisePartitioner,
    Engine,
    HashPartitioner,
    Placement,
    VertexProgram,
    shuffled,
    web_like_graph,
)

NUM_PARTITIONS = 16
NUM_MACHINES = 4


class TriangleCount(VertexProgram):
    """Count triangles: each vertex learns its neighbors' neighbor lists.

    Superstep 0: send my id to all neighbors.
    Superstep 1: send the received neighbor set to all neighbors.
    Superstep 2: count how many advertised neighbors are also my neighbors;
    every triangle is counted once at each of its three corners.
    """

    name = "triangles"

    def initial_state(self, vertex, degree):
        return 0

    def compute(self, vertex, state, messages, neighbors, ctx):
        if ctx.superstep == 0:
            ctx.send_all(neighbors, vertex)
        elif ctx.superstep == 1:
            peers = frozenset(messages)
            ctx.send_all(neighbors, peers)
        elif ctx.superstep == 2:
            mine = set(neighbors)
            hits = sum(len(mine & peers) for peers in messages)
            ctx.vote_halt()
            return hits // 2  # each triangle seen twice per corner
        else:
            ctx.vote_halt()
        return state


def main() -> None:
    graph = web_like_graph(num_communities=30, community_size=10, seed=5)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    def run_on(partitioner, label):
        result = partitioner.partition_stream(shuffled(graph.edges(), seed=2))
        placement = Placement(result.assignments,
                              partitions=list(range(NUM_PARTITIONS)),
                              num_machines=NUM_MACHINES)
        engine = Engine(graph, placement)
        report = engine.run(TriangleCount(), max_supersteps=5)
        triangles = sum(report.states.values()) // 3
        print(f"{label:<10} replication={result.replication_degree:6.3f}  "
              f"triangles={triangles:>6}  "
              f"simulated processing latency={report.latency_ms:8.2f} ms")
        return triangles, report.latency_ms

    tri_hash, lat_hash = run_on(HashPartitioner(range(NUM_PARTITIONS)),
                                "Hash")
    tri_adwise, lat_adwise = run_on(
        AdwisePartitioner(range(NUM_PARTITIONS), fixed_window=32), "ADWISE")

    assert tri_hash == tri_adwise, "results must not depend on partitioning"
    print(f"\nSame answer, different latency: the ADWISE placement is "
          f"{(1 - lat_adwise / lat_hash):.0%} faster to process.")


if __name__ == "__main__":
    main()
