#!/usr/bin/env python
"""Partitioning-as-a-service: a daemon, two tenants, one machine.

Boots the multi-tenant partitioning daemon in a background thread,
connects two tenants with different algorithms, interleaves their edge
batches over one connection, inspects live stats and the decision audit
trail, and shuts the daemon down gracefully — everything the
``repro-cli serve`` / ``client`` subcommands do, as a library.

Run:  python examples/partitioning_service.py
"""

import threading

from repro import barabasi_albert_graph, shuffled
from repro.service import ServiceClient
from repro.service.server import run_service

NUM_PARTITIONS = 8
BATCH = 200


def main() -> None:
    # 1. Boot the daemon on an OS-assigned port.
    ready = threading.Event()
    bound = {}

    def on_ready(service):
        bound["port"] = service.port
        ready.set()

    daemon = threading.Thread(
        target=run_service,
        kwargs=dict(port=0, queue_depth=8, ready_callback=on_ready),
        daemon=True)
    daemon.start()
    ready.wait(10)
    port = bound["port"]
    print(f"daemon listening on 127.0.0.1:{port}")

    # 2. Two tenants — different algorithms, same daemon.
    graph = barabasi_albert_graph(n=1000, m=6, seed=42)
    edges = [(e.u, e.v) for e in shuffled(graph.edges(), seed=7)]

    with ServiceClient(port=port) as client:
        client.open("team-adwise", algorithm="adwise",
                    partitions=NUM_PARTITIONS,
                    expected_edges=len(edges),
                    latency_preference_ms=300.0)
        client.open("team-hdrf", algorithm="hdrf",
                    partitions=NUM_PARTITIONS)

        # 3. Interleave pipelined batches: the daemon multiplexes both
        #    streams, each tenant's bounded queue providing backpressure.
        pending = {"team-adwise": [], "team-hdrf": []}
        for start in range(0, len(edges), BATCH):
            batch = edges[start:start + BATCH]
            for tenant in pending:
                pending[tenant].append(client.ingest_async(tenant, batch))
        for tenant, ids in pending.items():
            client.drain(ids)

        # 4. Live observability, mid-stream.
        for tenant in ("team-adwise", "team-hdrf"):
            stats = client.stats(tenant)
            session = stats["session"]
            metrics = stats["metrics"]
            print(f"{tenant}: {session['edges_ingested']} edges, "
                  f"replication {session['replication_degree']:.3f}, "
                  f"imbalance {session['imbalance']:.3f}, "
                  f"{metrics['edges_per_second']:.0f} edges/s "
                  f"(p99 batch {metrics['p99_ingest_ms']:.2f} ms)")
        last = client.audit("team-adwise", limit=3)["decisions"]
        print(f"last adwise decisions: "
              f"{[(d['u'], d['v'], d['partition']) for d in last]}")
        u, v = edges[0]
        print(f"vertex {u} lives on partitions "
              f"{client.query_vertex('team-adwise', u)}")

        # 5. Finish both streams and stop the daemon.
        for tenant in ("team-adwise", "team-hdrf"):
            result = client.finalize(tenant)
            print(f"{tenant} finalized: {len(result['assignments'])} "
                  f"assignments, replication "
                  f"{result['replication_degree']:.3f}")
        client.shutdown()
    daemon.join(10)
    print("daemon stopped")


if __name__ == "__main__":
    main()
