#!/usr/bin/env python
"""Render the paper's figure shapes as ASCII charts in your terminal.

Runs a compact version of the Fig. 7a experiment (PageRank on the Brain
analogue) and the Fig. 8 spread sweep, then draws them with the bundled
chart renderers — the stacked-bar dip at ADWISE's sweet spot and the
spotlight staircase are visible without any plotting dependency.

Run:  python examples/ascii_figures.py   (takes a minute or two)
"""

from repro.bench.charts import grouped_bar_chart, stacked_bar_chart
from repro.bench.harness import (
    ExperimentConfig,
    run_partitioning,
    spotlight_sweep,
    stacked_latency_experiment,
)
from repro.bench.workloads import BRAIN, adwise_factory, baseline_factories


def main() -> None:
    graph = BRAIN.build()
    stream = lambda: BRAIN.stream(order="local-shuffle")

    base = run_partitioning(baseline_factories()["HDRF"], stream()).latency_ms
    configs = [
        ExperimentConfig("DBH", baseline_factories()["DBH"]),
        ExperimentConfig("HDRF", baseline_factories()["HDRF"]),
        ExperimentConfig("ADWISE 4x", adwise_factory(
            base * 4, use_clustering=True, max_window=128)),
        ExperimentConfig("ADWISE 16x", adwise_factory(
            base * 16, use_clustering=True, max_window=128)),
    ]
    rows = stacked_latency_experiment(
        graph, stream, configs, workload="pagerank",
        block_iterations=100, num_blocks=2, enforce_balance=False)
    print(stacked_bar_chart(
        rows, width=56, num_blocks=2,
        title="Fig. 7a shape: PageRank on Brain (total latency)"))

    print()
    sweep = spotlight_sweep(
        lambda: BRAIN.stream(order="adjacency"),
        [ExperimentConfig("DBH", baseline_factories()["DBH"]),
         ExperimentConfig("HDRF", baseline_factories()["HDRF"])],
        spreads=(4, 8, 16, 32))
    print(grouped_bar_chart(
        sweep, width=46,
        title="Fig. 8 shape: replication degree by spotlight spread"))


if __name__ == "__main__":
    main()
