"""Unit tests for graph statistics."""

import pytest

from repro.graph.graph import Graph
from repro.graph.stats import (
    GraphSummary,
    average_clustering,
    degree_histogram,
    degree_skewness,
    degrees,
    local_clustering,
    max_degree,
    summarize,
)


class TestDegrees:
    def test_degrees_map(self, star):
        d = degrees(star)
        assert d[0] == 5
        assert all(d[i] == 1 for i in range(1, 6))

    def test_max_degree(self, star):
        assert max_degree(star) == 5

    def test_max_degree_empty(self):
        assert max_degree(Graph()) == 0

    def test_degree_histogram(self, star):
        assert degree_histogram(star) == {5: 1, 1: 5}


class TestClustering:
    def test_triangle_full_clustering(self, triangle):
        assert local_clustering(triangle, 0) == 1.0
        assert average_clustering(triangle) == 1.0

    def test_star_zero_clustering(self, star):
        assert average_clustering(star) == 0.0

    def test_degree_one_defined_zero(self, path_graph):
        assert local_clustering(path_graph, 0) == 0.0

    def test_path_middle_zero(self, path_graph):
        assert local_clustering(path_graph, 2) == 0.0

    def test_square_with_diagonal(self):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        # Vertices 1 and 3 have both neighbors connected: coefficient 1.
        assert local_clustering(graph, 1) == 1.0
        # Vertex 0 has neighbors {1,2,3}; links among them: (1,2),(2,3) = 2/3.
        assert local_clustering(graph, 0) == pytest.approx(2 / 3)

    def test_sampled_estimate_close_to_exact(self, small_clustered):
        exact = average_clustering(small_clustered, sample_size=None)
        sampled = average_clustering(small_clustered, sample_size=100, seed=1)
        assert abs(exact - sampled) < 0.15

    def test_sample_larger_than_graph_is_exact(self, triangle):
        assert average_clustering(triangle, sample_size=100) == 1.0

    def test_empty_graph(self):
        assert average_clustering(Graph()) == 0.0


class TestSkewness:
    def test_regular_graph_zero_skew(self):
        cycle = Graph([(i, (i + 1) % 6) for i in range(6)])
        assert degree_skewness(cycle) == 0.0

    def test_star_positive_skew(self, star):
        assert degree_skewness(star) > 0.0

    def test_tiny_graph_zero(self):
        assert degree_skewness(Graph([(0, 1)])) == 0.0


class TestSummary:
    def test_summarize_fields(self, two_triangles):
        summary = summarize("toy", two_triangles, clustering_sample=None)
        assert summary.name == "toy"
        assert summary.num_vertices == 5
        assert summary.num_edges == 6
        assert summary.max_degree == 4
        assert 0.0 < summary.clustering <= 1.0

    def test_row_renders(self, triangle):
        summary = summarize("tri", triangle, clustering_sample=None)
        row = summary.row()
        assert "tri" in row
        assert "3" in row
