"""Unit tests for the edge window and lazy traversal."""

import pytest

from repro.graph.graph import Edge
from repro.core.scoring import AdwiseScoring
from repro.core.window import EdgeWindow
from repro.partitioning.state import PartitionState
from repro.simtime import SimulatedClock


def make_window(partitions=(0, 1), lazy=True, epsilon=0.1,
                max_candidates=64, clock=None):
    state = PartitionState(list(partitions))
    scoring = AdwiseScoring(state, balancer=None, clock=clock)
    return EdgeWindow(scoring, lazy=lazy, epsilon=epsilon,
                      max_candidates=max_candidates), state


class TestBasics:
    def test_empty_window(self):
        window, _ = make_window()
        assert len(window) == 0
        with pytest.raises(IndexError):
            window.pop_best()

    def test_add_and_len(self):
        window, _ = make_window()
        window.add(Edge(1, 2))
        window.add(Edge(3, 4))
        assert len(window) == 2

    def test_duplicate_edges_kept_as_distinct_entries(self):
        window, _ = make_window()
        window.add(Edge(1, 2))
        window.add(Edge(1, 2))
        assert len(window) == 2

    def test_pop_removes_entry(self):
        window, _ = make_window()
        window.add(Edge(1, 2))
        edge, partition, score = window.pop_best()
        assert edge == Edge(1, 2)
        assert partition in (0, 1)
        assert len(window) == 0

    def test_invalid_epsilon(self):
        state = PartitionState([0])
        scoring = AdwiseScoring(state, balancer=None)
        with pytest.raises(ValueError):
            EdgeWindow(scoring, epsilon=2.0)

    def test_invalid_max_candidates(self):
        state = PartitionState([0])
        scoring = AdwiseScoring(state, balancer=None)
        with pytest.raises(ValueError):
            EdgeWindow(scoring, max_candidates=0)


class TestBestSelection:
    def test_informed_edge_preferred(self):
        """The Fig. 3(b) scenario: the edge with a known replica goes first."""
        window, state = make_window()
        # Vertex 10 already replicated on partition 0.
        state.observe_degrees(Edge(10, 11))
        state.assign(Edge(10, 11), 0)
        window.add(Edge(1, 2))     # uninformed
        window.add(Edge(10, 3))    # informed: 10 is on partition 0
        edge, partition, _ = window.pop_best()
        assert edge == Edge(10, 3)
        assert partition == 0

    def test_assignment_unlocks_next_edge(self):
        """Delaying uninformed edges lets them become informed (paper §II-C)."""
        window, state = make_window()
        state.observe_degrees(Edge(10, 11))
        state.assign(Edge(10, 11), 0)
        window.add(Edge(1, 10))
        window.add(Edge(1, 2))
        first_edge, first_partition, _ = window.pop_best()
        assert first_edge == Edge(1, 10)
        state.assign(first_edge, first_partition)
        window.on_replicas_changed([1, 10])
        second_edge, second_partition, _ = window.pop_best()
        assert second_edge == Edge(1, 2)
        assert second_partition == first_partition  # follows vertex 1


class TestNeighborhood:
    def test_window_local_neighbors(self):
        window, _ = make_window()
        window.add(Edge(1, 2))
        window.add(Edge(2, 3))
        window.add(Edge(8, 9))
        nbrs = window.neighborhood(Edge(1, 2))
        assert nbrs == {3}

    def test_neighborhood_excludes_own_entry(self):
        window, _ = make_window()
        eid = window.add(Edge(1, 2))
        assert window.neighborhood(Edge(1, 2), exclude_entry=eid) == set()

    def test_neighborhood_excludes_endpoints(self):
        window, _ = make_window()
        window.add(Edge(1, 2))
        window.add(Edge(1, 3))
        nbrs = window.neighborhood(Edge(2, 3))
        assert 2 not in nbrs and 3 not in nbrs
        assert nbrs == {1}


class TestLazyTraversal:
    def test_eager_mode_all_candidates(self):
        window, _ = make_window(lazy=False)
        for i in range(6):
            window.add(Edge(i, i + 100))
        assert window.candidate_count == 6
        assert window.secondary_count == 0

    def test_lazy_uniform_scores_go_secondary(self):
        """Cold cache: all scores equal the threshold avg+eps -> secondary."""
        window, _ = make_window(lazy=True)
        for i in range(6):
            window.add(Edge(i, i + 100))
        assert window.secondary_count == 6

    def test_high_score_edge_becomes_candidate(self):
        window, state = make_window(lazy=True)
        for i in range(5):
            window.add(Edge(i, i + 100))
        state.observe_degrees(Edge(50, 51))
        state.assign(Edge(50, 51), 0)
        window.add(Edge(50, 52))  # replica bonus beats the average
        assert window.candidate_count >= 1

    def test_empty_candidates_fallback_promotes(self):
        window, _ = make_window(lazy=True)
        for i in range(8):
            window.add(Edge(i, i + 100))
        assert window.candidate_count == 0
        edge, partition, _ = window.pop_best()  # triggers rescore+promotion
        assert edge is not None

    def test_replica_change_promotes_secondary(self):
        window, state = make_window(lazy=True)
        for i in range(8):
            window.add(Edge(i, i + 100))
        assert window.candidate_count == 0
        state.observe_degrees(Edge(3, 103))
        state.assign(Edge(3, 103), 0)
        promoted = window.on_replicas_changed([3, 103])
        assert promoted >= 1
        assert window.candidate_count >= 1

    def test_max_candidates_cap(self):
        window, state = make_window(lazy=True, max_candidates=2)
        state.observe_degrees(Edge(50, 51))
        state.assign(Edge(50, 51), 0)
        for i in range(5):
            window.add(Edge(50, 200 + i))  # all have replica bonus
        assert window.candidate_count <= 2

    def test_lazy_and_eager_same_quality(self, small_powerlaw):
        """Lazy traversal must not degrade decisions much (paper: 'exactly
        the same assignment decisions' when candidates are chosen right)."""
        from repro.graph.stream import shuffled
        from repro.core.adwise import AdwisePartitioner

        stream = shuffled(small_powerlaw.edges(), seed=3)
        lazy = AdwisePartitioner(range(4), fixed_window=16, lazy=True)
        eager = AdwisePartitioner(range(4), fixed_window=16, lazy=False)
        r_lazy = lazy.partition_stream(stream)
        r_eager = eager.partition_stream(stream)
        assert (r_lazy.replication_degree
                <= r_eager.replication_degree * 1.15)

    def test_lazy_fewer_score_computations(self, small_powerlaw):
        from repro.graph.stream import shuffled
        from repro.core.adwise import AdwisePartitioner
        from repro.simtime import SimulatedClock

        stream = shuffled(small_powerlaw.edges(), seed=3)
        lazy_clock = SimulatedClock()
        eager_clock = SimulatedClock()
        AdwisePartitioner(range(4), fixed_window=32, lazy=True,
                          clock=lazy_clock).partition_stream(stream)
        AdwisePartitioner(range(4), fixed_window=32, lazy=False,
                          clock=eager_clock).partition_stream(stream)
        assert lazy_clock.score_computations < eager_clock.score_computations


class TestThreshold:
    def test_threshold_tracks_average(self):
        window, state = make_window(epsilon=0.1)
        state.observe_degrees(Edge(50, 51))
        state.assign(Edge(50, 51), 0)
        window.add(Edge(1, 2))
        avg = window._score_sum / len(window)
        assert window.threshold == pytest.approx(avg + 0.1)

    def test_empty_window_threshold_is_epsilon(self):
        window, _ = make_window(epsilon=0.25)
        assert window.threshold == 0.25
