"""Unit tests for the adaptive window controller (Algorithm 1, C1/C2)."""

import pytest

from repro.core.adaptive import (
    AdaptiveWindowController,
    FixedWindowController,
    WindowDecision,
)


def make_controller(latency=1000.0, total_edges=1000, **kwargs):
    return AdaptiveWindowController(latency, total_edges, **kwargs)


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(-1.0, 100)

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(10.0, -5)

    def test_bad_window_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(10.0, 100, min_window=5, max_window=2)

    def test_initial_window_within_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveWindowController(10.0, 100, initial_window=100,
                                     max_window=10)


class TestConditions:
    def test_c1_true_without_history(self):
        controller = make_controller()
        assert controller.condition_c1(0.5)

    def test_c1_requires_strict_improvement(self):
        controller = make_controller()
        controller._prev_block_avg = 1.0
        assert controller.condition_c1(1.1)
        assert not controller.condition_c1(1.0)
        assert not controller.condition_c1(0.9)

    def test_c2_true_without_preference(self):
        controller = AdaptiveWindowController(None, 1000)
        assert controller.condition_c2(avg_latency_ms=1e9, now_ms=1e9)

    def test_c2_true_when_budget_ample(self):
        controller = make_controller(latency=1000.0, total_edges=100)
        # 1000 ms for 100 edges -> 10 ms/edge budget.
        assert controller.condition_c2(avg_latency_ms=1.0, now_ms=0.0)

    def test_c2_false_when_too_slow(self):
        controller = make_controller(latency=100.0, total_edges=100)
        assert not controller.condition_c2(avg_latency_ms=5.0, now_ms=0.0)

    def test_c2_false_when_budget_exhausted(self):
        controller = make_controller(latency=100.0, total_edges=100)
        assert not controller.condition_c2(avg_latency_ms=0.001, now_ms=200.0)

    def test_c2_true_when_no_edges_remaining(self):
        controller = make_controller(latency=1.0, total_edges=2)
        controller._total_assignments = 2
        assert controller.condition_c2(avg_latency_ms=100.0, now_ms=500.0)


class TestDecisions:
    def test_grows_when_fast_and_improving(self):
        controller = make_controller(latency=1e6, total_edges=1000)
        decision = controller.record(score=1.0, now_ms=0.01)
        assert decision == WindowDecision.GROW
        assert controller.window_size == 2

    def test_doubles_each_improving_block(self):
        controller = make_controller(latency=1e6, total_edges=10000)
        now = 0.0
        score = 1.0
        for expected in (2, 4, 8):
            for _ in range(controller.window_size):
                now += 0.001
                score += 0.1  # strictly improving averages
                decision = controller.record(score, now)
            assert controller.window_size == expected

    def test_shrinks_when_too_slow(self):
        controller = make_controller(latency=10.0, total_edges=1000,
                                     initial_window=8)
        # One block of 8 assignments at 1 ms each: avg 1 ms > 10/992 budget.
        decision = None
        for i in range(8):
            decision = controller.record(score=1.0, now_ms=float(i + 1))
        assert decision == WindowDecision.SHRINK
        assert controller.window_size == 4

    def test_keep_when_quality_stalls_but_fast(self):
        controller = make_controller(latency=1e6, total_edges=1000)
        controller.record(score=1.0, now_ms=0.001)       # grow to 2
        controller.record(score=0.5, now_ms=0.002)
        decision = controller.record(score=0.5, now_ms=0.003)  # avg 0.5 < 1.0
        assert decision == WindowDecision.KEEP
        assert controller.window_size == 2

    def test_never_below_min_window(self):
        controller = make_controller(latency=0.0, total_edges=1000)
        for i in range(10):
            controller.record(score=1.0, now_ms=float(i + 1))
        assert controller.window_size == 1

    def test_never_above_max_window(self):
        controller = make_controller(latency=1e9, total_edges=10**6,
                                     max_window=4)
        now = 0.0
        score = 1.0
        for _ in range(50):
            now += 0.0001
            score += 0.01
            controller.record(score, now)
        assert controller.window_size <= 4

    def test_zero_latency_preference_degenerates_to_single_edge(self):
        """Paper: 'if L is too tight (e.g. 0 seconds) ... w = 1'."""
        controller = make_controller(latency=0.0, total_edges=100)
        for i in range(20):
            controller.record(score=2.0, now_ms=0.5 * (i + 1))
        assert controller.window_size == 1

    def test_block_not_full_returns_none(self):
        controller = make_controller(initial_window=4)
        assert controller.record(score=1.0, now_ms=0.1) is None

    def test_events_trace_recorded(self):
        controller = make_controller(latency=1e6, total_edges=100)
        controller.record(score=1.0, now_ms=0.001)
        assert len(controller.events) == 1
        event = controller.events[0]
        assert event.decision == WindowDecision.GROW
        assert event.window_before == 1
        assert event.window_after == 2

    def test_max_window_reached(self):
        controller = make_controller(latency=1e6, total_edges=10000)
        now, score = 0.0, 1.0
        for _ in range(20):
            now += 0.001
            score += 0.1
            controller.record(score, now)
        assert controller.max_window_reached >= 4


class TestFixedWindow:
    def test_fixed_never_adapts(self):
        controller = FixedWindowController(8)
        for i in range(100):
            assert controller.record(1.0, float(i)) is None
        assert controller.window_size == 8
        assert controller.max_window_reached == 8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FixedWindowController(0)
