"""End-to-end integration tests across the full stack.

Each test exercises the complete pipeline the paper's evaluation uses:
generate graph -> stream -> (parallel) partition -> place on machines ->
run a vertex program on the engine -> check results and latency coupling.
"""

import pytest

from repro.graph.generators import community_powerlaw_graph
from repro.graph.io import write_graph
from repro.graph.stream import FileEdgeStream, InMemoryEdgeStream
from repro.core.adwise import AdwisePartitioner
from repro.engine.algorithms import ConnectedComponents, PageRank
from repro.engine.cost import cost_model_for
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.parallel import ParallelLoader
from repro.simtime import SimulatedClock, WallClock


@pytest.fixture(scope="module")
def graph():
    return community_powerlaw_graph(num_communities=8, community_size=25,
                                    intra_p=0.5, overlay_m=2, seed=9)


class TestFileToEnginePipeline:
    def test_full_pipeline_from_file(self, tmp_path, graph):
        path = tmp_path / "g.txt"
        write_graph(path, graph)
        stream = FileEdgeStream(path)
        partitioner = AdwisePartitioner(range(8),
                                        latency_preference_ms=100.0)
        result = partitioner.partition_stream(stream)
        assert result.state.assigned_edges == graph.num_edges

        placement = Placement(result.assignments, list(range(8)),
                              num_machines=4)
        engine = Engine(graph, placement, cost_model_for("pagerank"))
        report = engine.run(PageRank(iterations=5), max_supersteps=7)
        assert report.converged
        assert sum(report.states.values()) == pytest.approx(
            graph.num_vertices, rel=1e-6)
        assert report.latency_ms > 0


class TestQualityLatencyCoupling:
    """The paper's causal chain must hold end to end: better partitioning
    -> fewer sync messages -> lower simulated processing latency."""

    def test_adwise_processing_faster_than_hash(self, graph):
        stream = InMemoryEdgeStream(graph.edge_list())

        def processing_latency(partitioner):
            result = partitioner.partition_stream(stream)
            placement = Placement(result.assignments, list(range(16)),
                                  num_machines=4)
            engine = Engine(graph, placement, cost_model_for("pagerank"))
            return result.replication_degree, \
                engine.stationary_latency_ms(100)

        hash_repl, hash_ms = processing_latency(HashPartitioner(range(16)))
        adwise_repl, adwise_ms = processing_latency(
            AdwisePartitioner(range(16), fixed_window=16))
        assert adwise_repl < hash_repl
        assert adwise_ms < hash_ms


class TestParallelPipeline:
    def test_parallel_loading_to_engine(self, graph):
        loader = ParallelLoader(
            lambda parts, clock: HDRFPartitioner(parts, clock=clock),
            partitions=list(range(16)), num_instances=4)
        result = loader.run(InMemoryEdgeStream(graph.edge_list()))
        placement = Placement(result.assignments, list(range(16)),
                              num_machines=4)
        engine = Engine(graph, placement)
        report = engine.run(ConnectedComponents(), max_supersteps=60)
        assert report.converged
        # The generator guarantees an overlay that connects communities.
        assert len(set(report.states.values())) == 1

    def test_spotlight_reduces_processing_latency(self, dense_community):
        """Spotlight -> lower replication -> lower processing latency.

        Uses DBH on a dense community graph in adjacency order, the regime
        where the spotlight effect is robust even at test scale (HDRF's
        spread response only becomes monotone at realistic chunk sizes).
        """
        from repro.partitioning.dbh import DBHPartitioner

        def latency_for(spread):
            loader = ParallelLoader(
                lambda parts, clock: DBHPartitioner(parts, clock=clock),
                partitions=list(range(16)), num_instances=4, spread=spread)
            result = loader.run(
                InMemoryEdgeStream(dense_community.edge_list()))
            placement = Placement(result.assignments, list(range(16)),
                                  num_machines=4)
            return Engine(dense_community, placement).stationary_latency_ms(100)

        assert latency_for(4) < latency_for(16)


class TestClockModes:
    def test_wall_clock_pipeline_runs(self, graph):
        partitioner = HDRFPartitioner(range(8), clock=WallClock())
        result = partitioner.partition_stream(
            InMemoryEdgeStream(graph.edge_list()))
        assert result.latency_ms >= 0.0
        assert result.score_computations > 0

    def test_simulated_latency_deterministic(self, graph):
        def run():
            partitioner = AdwisePartitioner(
                range(8), latency_preference_ms=50.0,
                clock=SimulatedClock())
            return partitioner.partition_stream(
                InMemoryEdgeStream(graph.edge_list()))
        a, b = run(), run()
        assert a.latency_ms == b.latency_ms
        assert a.assignments == b.assignments
