"""Tests for persisting and reloading partitionings."""

import gzip

import pytest

from repro.graph.graph import Edge
from repro.graph.stream import shuffled
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.partition_io import (
    _WRITE_BATCH,
    iter_assignments,
    load_result,
    read_assignments,
    save_result,
    write_assignments,
)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        assignments = {Edge(1, 2): 0, Edge(2, 3): 1}
        path = tmp_path / "p.txt"
        written = write_assignments(path, assignments, header="test")
        assert written == 2
        assert read_assignments(path) == assignments

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# header\n1 2 0\n% other\n2 3 1\n")
        assert read_assignments(path) == {Edge(1, 2): 0, Edge(2, 3): 1}

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("1 2\n")
        with pytest.raises(ValueError):
            read_assignments(path)

    def test_non_canonical_edges_canonicalised(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("5 2 3\n")
        assert read_assignments(path) == {Edge(2, 5): 3}


class TestGzipAndBatching:
    """Transparent ``.gz`` support and batched ``writelines`` writes."""

    def test_gz_write_then_read(self, tmp_path):
        assignments = {Edge(1, 2): 0, Edge(2, 3): 1, Edge(3, 4): 0}
        path = tmp_path / "p.txt.gz"
        written = write_assignments(path, assignments, header="compressed")
        assert written == 3
        assert read_assignments(path) == assignments
        # The file really is gzip: raw bytes start with the magic and
        # decompress to the plain-text format.
        raw = path.read_bytes()
        assert raw[:2] == b"\x1f\x8b"
        text = gzip.decompress(raw).decode("utf-8")
        assert text.startswith("# compressed\n")
        assert "1 2 0\n" in text

    def test_gz_and_plain_content_identical(self, tmp_path):
        assignments = {Edge(i, i + 1): i % 4 for i in range(50)}
        plain = tmp_path / "p.txt"
        compressed = tmp_path / "p.txt.gz"
        write_assignments(plain, assignments, header="h")
        write_assignments(compressed, assignments, header="h")
        assert gzip.decompress(compressed.read_bytes()).decode("utf-8") \
            == plain.read_text()

    def test_gz_save_load_result(self, tmp_path, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = HDRFPartitioner(range(4)).partition_stream(stream)
        path = tmp_path / "result.txt.gz"
        save_result(path, result)
        loaded = load_result(path, partitions=range(4))
        assert loaded.assignments == result.assignments

    def test_write_larger_than_one_batch(self, tmp_path):
        count = _WRITE_BATCH + 7
        assignments = {Edge(i, i + count): i % 8 for i in range(count)}
        path = tmp_path / "big.txt"
        assert write_assignments(path, assignments) == count
        assert len(read_assignments(path)) == count

    def test_iter_assignments_streams_triples(self, tmp_path):
        path = tmp_path / "p.txt.gz"
        write_assignments(path, {Edge(1, 2): 0, Edge(2, 3): 1},
                          header="h")
        assert list(iter_assignments(path)) == [(1, 2, 0), (2, 3, 1)]

    def test_iter_assignments_malformed_raises(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("1 2\n")
        with pytest.raises(ValueError):
            list(iter_assignments(path))

    def test_sharded_graph_reads_gz(self, tmp_path):
        from repro.graph.shard import ShardedGraph
        assignments = {Edge(0, 1): 0, Edge(1, 2): 1}
        path = tmp_path / "p.txt.gz"
        write_assignments(path, assignments)
        sharded = ShardedGraph.from_file(path)
        assert sharded.assignments == assignments


class TestResultRoundTrip:
    def test_save_and_load_preserves_metrics(self, tmp_path, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = HDRFPartitioner(range(4)).partition_stream(stream)
        path = tmp_path / "result.txt"
        save_result(path, result)
        loaded = load_result(path, partitions=range(4))
        assert loaded.assignments == result.assignments
        assert loaded.replication_degree == pytest.approx(
            result.replication_degree)
        assert loaded.imbalance == pytest.approx(result.imbalance)

    def test_load_infers_partitions(self, tmp_path):
        path = tmp_path / "p.txt"
        write_assignments(path, {Edge(1, 2): 3, Edge(2, 4): 7})
        loaded = load_result(path)
        assert set(loaded.state.partitions) == {3, 7}

    def test_load_empty_file_raises(self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError):
            load_result(path)

    def test_header_contains_provenance(self, tmp_path, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = HDRFPartitioner(range(4)).partition_stream(stream)
        path = tmp_path / "result.txt"
        save_result(path, result)
        first_line = path.read_text().splitlines()[0]
        assert "algorithm=HDRF" in first_line
        assert "replication_degree=" in first_line


class TestMergedResultRoundTrip:
    """A merged parallel run must survive the persistence boundary."""

    def _parallel_result(self, small_powerlaw, backend="simulated"):
        from repro.partitioning.parallel import (
            ParallelLoader,
            PartitionerSpec,
        )

        loader = ParallelLoader(PartitionerSpec("hdrf"),
                                partitions=list(range(8)),
                                num_instances=4, backend=backend)
        return loader.run(shuffled(small_powerlaw.edges(), seed=3))

    def test_merged_assignments_round_trip(self, tmp_path, small_powerlaw):
        parallel = self._parallel_result(small_powerlaw)
        path = tmp_path / "merged.txt"
        written = write_assignments(path, parallel.assignments)
        assert written == len(parallel.assignments)
        assert read_assignments(path) == parallel.assignments

    def test_save_load_merged_result_recomputes_metrics(self, tmp_path,
                                                        small_powerlaw):
        parallel = self._parallel_result(small_powerlaw)
        merged = parallel.to_partition_result()
        path = tmp_path / "merged.txt"
        save_result(path, merged)
        loaded = load_result(path, partitions=list(range(8)))
        assert loaded.assignments == merged.assignments
        # Metrics are replayed, not trusted from the header — and must
        # equal the merged parallel run's.
        assert loaded.replication_degree == \
            pytest.approx(parallel.replication_degree)
        assert loaded.imbalance == pytest.approx(parallel.imbalance)

    def test_process_backend_result_round_trips_identically(
            self, tmp_path, small_powerlaw):
        simulated = self._parallel_result(small_powerlaw)
        process = self._parallel_result(small_powerlaw, backend="process")
        sim_path = tmp_path / "sim.txt"
        proc_path = tmp_path / "proc.txt"
        write_assignments(sim_path, simulated.assignments)
        write_assignments(proc_path, process.assignments)
        assert sim_path.read_text() == proc_path.read_text()

    def test_save_result_rejects_unwritable_path(self, tmp_path,
                                                 small_powerlaw):
        merged = self._parallel_result(small_powerlaw).to_partition_result()
        with pytest.raises(OSError):
            save_result(tmp_path / "missing-dir" / "merged.txt", merged)

    def test_load_result_with_explicit_partitions_keeps_empty_ones(
            self, tmp_path):
        path = tmp_path / "p.txt"
        path.write_text("1 2 0\n")
        loaded = load_result(path, partitions=[0, 1, 2, 3])
        assert loaded.state.partition_edges == {0: 1, 1: 0, 2: 0, 3: 0}
