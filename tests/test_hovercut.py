"""Tests for the HoVerCut-style batched shared-state partitioner."""

import pytest

from repro.graph.stream import shuffled
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hovercut import HoverCutPartitioner
from repro.partitioning.hashing import HashPartitioner


def hdrf_policy(state, clock):
    return HDRFPartitioner(state.partitions, clock=clock, state=state)


class TestHoverCut:
    def test_all_edges_assigned(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        partitioner = HoverCutPartitioner(range(4), hdrf_policy,
                                          num_workers=3, batch_size=16)
        result = partitioner.partition_stream(stream)
        assert len(result.assignments) == len(stream)
        assert sum(result.state.partition_edges.values()) == len(stream)

    def test_deterministic(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)

        def run():
            return HoverCutPartitioner(range(4), hdrf_policy,
                                       num_workers=3,
                                       batch_size=16).partition_stream(stream)
        assert run().assignments == run().assignments

    def test_single_worker_single_batch_matches_plain(self, small_powerlaw):
        """One worker with one giant batch is plain single-pass streaming."""
        stream = shuffled(small_powerlaw.edges(), seed=3)
        hover = HoverCutPartitioner(range(4), hdrf_policy, num_workers=1,
                                    batch_size=len(stream) + 1)
        plain = HDRFPartitioner(range(4))
        assert (hover.partition_stream(stream).assignments
                == plain.partition_stream(stream).assignments)

    def test_latency_is_max_of_workers(self, small_powerlaw):
        """Parallel workers split the per-pass latency roughly evenly."""
        stream = shuffled(small_powerlaw.edges(), seed=3)
        solo = HoverCutPartitioner(range(4), hdrf_policy, num_workers=1,
                                   batch_size=32).partition_stream(stream)
        quad = HoverCutPartitioner(range(4), hdrf_policy, num_workers=4,
                                   batch_size=32).partition_stream(stream)
        assert quad.latency_ms < solo.latency_ms
        assert quad.latency_ms > solo.latency_ms / 8

    def test_stale_state_costs_some_quality(self, small_clustered):
        """More workers -> staler snapshots -> replication no better."""
        stream = shuffled(small_clustered.edges(), seed=3)
        solo = HoverCutPartitioner(range(8), hdrf_policy, num_workers=1,
                                   batch_size=32).partition_stream(stream)
        many = HoverCutPartitioner(range(8), hdrf_policy, num_workers=8,
                                   batch_size=32).partition_stream(stream)
        assert many.replication_degree >= solo.replication_degree * 0.98

    def test_beats_hash_quality(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        hover = HoverCutPartitioner(range(8), hdrf_policy, num_workers=4,
                                    batch_size=32).partition_stream(stream)
        hashed = HashPartitioner(range(8)).partition_stream(stream)
        assert hover.replication_degree < hashed.replication_degree

    def test_validation(self):
        with pytest.raises(ValueError):
            HoverCutPartitioner(range(2), hdrf_policy, num_workers=0)
        with pytest.raises(ValueError):
            HoverCutPartitioner(range(2), hdrf_policy, batch_size=0)
