"""Session facade tests: open/ingest/query/stats and snapshot-resume.

The snapshot contract is the strong one: a session snapshot taken
mid-stream, restored (optionally through a pickle file), and fed the
rest of the stream must produce **bit-identical** results — same
assignments, same simulated latency, same adaptive extras — as the
uninterrupted session and as the batch ``partition_stream`` reference.
"""

import random

import pytest

from repro.api import (
    PartitionSession,
    SessionError,
    SessionSnapshot,
    SessionStats,
    open_session,
    restore_session,
)
from repro.core.adwise import AdwisePartitioner
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.simtime import SimulatedClock, WallClock


def _edges(n, vertices, seed):
    rng = random.Random(seed)
    out = [Edge(rng.randrange(vertices), rng.randrange(vertices))
           for _ in range(n)]
    return [e for e in out if e.u != e.v]


EDGES = _edges(1600, 250, seed=9)


def _feed(session, edges, chunk=53):
    for start in range(0, len(edges), chunk):
        session.ingest(edges[start:start + chunk])


class TestOpenSession:
    def test_returns_session(self):
        session = open_session(algorithm="adwise", partitions=4)
        assert isinstance(session, PartitionSession)
        assert session.algorithm == "adwise"

    def test_partition_count_and_explicit_ids(self):
        by_count = open_session(algorithm="hdrf", partitions=5)
        assert by_count.partitioner.state.partitions == [0, 1, 2, 3, 4]
        by_ids = open_session(algorithm="hdrf", partitions=[3, 7, 9])
        assert by_ids.partitioner.state.partitions == [3, 7, 9]

    def test_knobs_forwarded(self):
        session = open_session(algorithm="adwise", partitions=4,
                               fixed_window=16)
        assert session.partitioner.fixed_window == 16

    def test_bad_inputs_raise(self):
        with pytest.raises(SessionError):
            open_session(algorithm="nope", partitions=4)
        with pytest.raises(SessionError):
            open_session(algorithm="adwise", partitions=0)
        with pytest.raises(SessionError):
            open_session(algorithm="adwise", partitions=[])
        with pytest.raises(SessionError):
            open_session(algorithm="hdrf", partitions=4,
                         not_a_knob=True)

    def test_accepts_tuples_and_edges(self):
        session = open_session(algorithm="dbh", partitions=4)
        session.ingest([(0, 1), Edge(1, 2)])
        assert session.edges_ingested == 2


class TestQueriesAndStats:
    def test_query_vertex_and_edge(self):
        session = open_session(algorithm="hdrf", partitions=4)
        [assignment] = session.ingest([(5, 9)])
        assert session.query_edge(5, 9) == assignment.partition
        assert session.query_edge(9, 5) == assignment.partition
        assert session.query_vertex(5) == [assignment.partition]
        assert session.query_edge(1, 2) is None
        assert session.query_vertex(123) == []

    def test_stats_reflect_buffering(self):
        session = open_session(algorithm="adwise", partitions=4,
                               fixed_window=64)
        session.ingest(EDGES[:40])  # under the window target: all buffered
        stats = session.stats()
        assert isinstance(stats, SessionStats)
        assert stats.edges_ingested == 40
        assert stats.assignments_emitted == 0
        assert stats.buffered_edges == 40
        assert stats.window_size == 64
        round_trip = stats.to_dict()
        assert round_trip["edges_ingested"] == 40

    def test_finalize_closes(self):
        session = open_session(algorithm="hdrf", partitions=4)
        session.ingest(EDGES[:10])
        result = session.finalize()
        assert len(result.assignments) == len(session._map)
        with pytest.raises(SessionError):
            session.ingest([(0, 1)])
        with pytest.raises(SessionError):
            session.snapshot()

    def test_finalize_matches_batch(self):
        session = open_session(algorithm="adwise", partitions=6,
                               expected_edges=len(EDGES),
                               latency_preference_ms=40.0)
        _feed(session, EDGES)
        result = session.finalize()
        reference = AdwisePartitioner(
            list(range(6)), clock=SimulatedClock(),
            latency_preference_ms=40.0,
        ).partition_stream(InMemoryEdgeStream(EDGES))
        assert result.assignments == reference.assignments
        assert result.latency_ms == reference.latency_ms
        assert result.extras == reference.extras


def _adwise_knobs(fast):
    knobs = {"latency_preference_ms": 40.0}
    if fast:
        knobs["fast"] = True
    return knobs


class TestSnapshotResume:
    @pytest.mark.parametrize("cut", [1, 400, 777, len(EDGES) - 1])
    @pytest.mark.parametrize("fast", [False, True],
                             ids=["object-state", "fast-state"])
    def test_adwise_midstream_resume_bit_identical(self, cut, fast,
                                                   tmp_path):
        """snapshot -> pickle -> restore -> continue == uninterrupted.

        The live AdwisePartitioner has migrated to the array window
        backend by the later cut points, so this also proves the array
        window's image round-trip mid-traversal.
        """
        knobs = _adwise_knobs(fast)
        live = open_session(algorithm="adwise", partitions=6,
                            expected_edges=len(EDGES), **knobs)
        _feed(live, EDGES[:cut])

        path = tmp_path / "session.snapshot"
        live.snapshot().save(str(path))
        resumed = restore_session(SessionSnapshot.load(str(path)))

        _feed(live, EDGES[cut:])
        _feed(resumed, EDGES[cut:])
        live_result = live.finalize()
        resumed_result = resumed.finalize()

        assert resumed_result.assignments == live_result.assignments
        assert resumed_result.latency_ms == live_result.latency_ms
        assert resumed_result.extras == live_result.extras

        reference = AdwisePartitioner(
            list(range(6)), clock=SimulatedClock(), **knobs,
        ).partition_stream(InMemoryEdgeStream(EDGES))
        assert resumed_result.assignments == reference.assignments
        assert resumed_result.latency_ms == reference.latency_ms

    def test_array_window_live_at_snapshot(self):
        """Sanity-check the interesting case really occurs: by edge 777
        a fast-state adwise session has migrated to the array window
        (the hybrid backend migrates once the window grows past the
        threshold), so the fast-state resume params above really do
        round-trip an ArrayEdgeWindow mid-traversal."""
        from repro.core.array_window import ArrayEdgeWindow

        session = open_session(algorithm="adwise", partitions=6,
                               expected_edges=len(EDGES),
                               **_adwise_knobs(fast=True))
        _feed(session, EDGES[:777])
        assert isinstance(session.partitioner.window, ArrayEdgeWindow)
        restored = restore_session(session.snapshot())
        assert isinstance(restored.partitioner.window, ArrayEdgeWindow)

    @pytest.mark.parametrize("algorithm", ["hdrf", "dbh", "greedy",
                                           "grid", "hash"])
    def test_single_edge_algorithms_resume(self, algorithm):
        live = open_session(algorithm=algorithm, partitions=5)
        _feed(live, EDGES[:500])
        resumed = restore_session(live.snapshot())
        _feed(live, EDGES[500:])
        _feed(resumed, EDGES[500:])
        live_result = live.finalize()
        resumed_result = resumed.finalize()
        assert resumed_result.assignments == live_result.assignments
        assert resumed_result.latency_ms == live_result.latency_ms

    def test_snapshot_preserves_queries(self):
        live = open_session(algorithm="hdrf", partitions=4)
        live.ingest(EDGES[:200])
        resumed = restore_session(live.snapshot())
        probe = EDGES[0].canonical()
        assert (resumed.query_edge(probe.u, probe.v)
                == live.query_edge(probe.u, probe.v))
        assert resumed.query_vertex(probe.u) == live.query_vertex(probe.u)
        assert resumed.edges_ingested == live.edges_ingested

    def test_fixed_window_resume(self):
        live = open_session(algorithm="adwise", partitions=4,
                            expected_edges=len(EDGES), fixed_window=128)
        _feed(live, EDGES[:600])
        resumed = restore_session(live.snapshot())
        _feed(live, EDGES[600:])
        _feed(resumed, EDGES[600:])
        assert (resumed.finalize().assignments
                == live.finalize().assignments)

    def test_wall_clock_sessions_cannot_snapshot(self):
        session = open_session(algorithm="hdrf", partitions=4,
                               clock=WallClock())
        session.ingest(EDGES[:10])
        with pytest.raises(SessionError):
            session.snapshot()

    def test_snapshot_file_rejects_other_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "junk.snapshot"
        path.write_bytes(pickle.dumps({"not": "a snapshot"}))
        with pytest.raises(SessionError):
            SessionSnapshot.load(str(path))
