"""Focused tests for the locally shuffled stream order."""

import pytest

from repro.graph.graph import Edge
from repro.graph.stream import locally_shuffled


def path_edges(n):
    return [Edge(i, i + 1) for i in range(n)]


class TestLocallyShuffled:
    def test_permutation(self):
        edges = path_edges(200)
        out = list(locally_shuffled(edges, buffer_size=16, seed=1))
        assert sorted(out) == sorted(edges)

    def test_deterministic(self):
        edges = path_edges(100)
        a = list(locally_shuffled(edges, buffer_size=16, seed=4))
        b = list(locally_shuffled(edges, buffer_size=16, seed=4))
        assert a == b

    def test_displacement_bounded_by_buffer(self):
        """No edge may appear earlier than its position minus the buffer."""
        edges = path_edges(500)
        buffer_size = 32
        out = list(locally_shuffled(edges, buffer_size=buffer_size, seed=2))
        original_index = {e: i for i, e in enumerate(edges)}
        for position, edge in enumerate(out):
            # An edge can only be emitted after it entered the buffer.
            assert position >= original_index[edge] - buffer_size

    def test_buffer_one_nearly_identity(self):
        """A tiny buffer keeps edges close to their original position.

        An edge can never be emitted earlier than one slot before its
        original position, and delays are geometrically rare, so the
        average displacement stays small.
        """
        edges = path_edges(50)
        out = list(locally_shuffled(edges, buffer_size=1, seed=3))
        original_index = {e: i for i, e in enumerate(edges)}
        displacements = [abs(original_index[e] - i)
                         for i, e in enumerate(out)]
        assert sum(displacements) / len(displacements) < 2.0
        assert all(i >= original_index[e] - 1 for i, e in enumerate(out))

    def test_large_buffer_fully_shuffles(self):
        edges = path_edges(100)
        out = list(locally_shuffled(edges, buffer_size=1000, seed=5))
        assert out != edges  # everything sat in the buffer, then shuffled

    def test_actually_scrambles_locally(self):
        edges = path_edges(300)
        out = list(locally_shuffled(edges, buffer_size=64, seed=6))
        assert out != edges

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            locally_shuffled([], buffer_size=0)

    def test_empty_input(self):
        assert list(locally_shuffled([], buffer_size=8)) == []
