"""Shared plumbing for the service test suites.

* :class:`SupervisedDaemon` — runs a real :class:`PartitionService` in a
  background thread and, like an init system, boots a fresh daemon over
  the same directories (and the same port) whenever a
  :class:`SimulatedCrash` takes one down.
* :class:`FaultSchedule` — consume-on-fire crash schedule threaded
  through the daemon's ``fault_hook`` (the serving-path twin of
  ``cluster.faults.FaultInjector``): each scheduled ``(point, seq)``
  kills the daemon exactly once, so the post-restart replay of the same
  batch runs clean.
* :class:`FlakyProxy` — a TCP proxy that cuts (and optionally delays)
  client connections mid-stream, for exercising the client's
  reconnect + resend path without touching the daemon.
"""

import asyncio
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import PartitionService
from repro.service.wal import SimulatedCrash


class FaultSchedule:
    """Crash the daemon at scheduled ``(point, seq)`` boundaries.

    Entries are consumed when they fire; ``fired`` records the order.
    Shared across daemon restarts so recovery replay never re-crashes
    on the batch that killed the previous incarnation.
    """

    def __init__(self, kills) -> None:
        self.kills = set(kills)
        self.fired: List[Tuple[str, int]] = []

    def __call__(self, point: str, tenant: str, seq: int) -> None:
        key = (point, seq)
        if key in self.kills:
            self.kills.discard(key)
            self.fired.append(key)
            raise SimulatedCrash(f"injected crash at {point} seq {seq}")


class SupervisedDaemon:
    """A daemon thread that auto-restarts after simulated crashes."""

    def __init__(self, **kwargs) -> None:
        self.kwargs = kwargs
        self.port = 0
        self.boots = 0
        self.error: Optional[BaseException] = None
        self.last_service: Optional[PartitionService] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        def target() -> None:
            while True:
                box: Dict[str, PartitionService] = {}

                async def main() -> None:
                    service = PartitionService(port=self.port,
                                               **self.kwargs)
                    await service.start()
                    box["service"] = service
                    self.last_service = service
                    self.port = service.port  # pin across restarts
                    self.boots += 1
                    self._ready.set()
                    await service.serve_forever()

                try:
                    asyncio.run(main())
                except BaseException as exc:  # boot/recovery failure
                    self.error = exc
                    self._ready.set()
                    return
                service = box.get("service")
                if service is None or not service.crashed:
                    return  # graceful shutdown
                # crashed: loop around and recover over the same dirs

        self._thread = threading.Thread(target=target, daemon=True)
        self._thread.start()
        assert self._ready.wait(15), "daemon did not come up"
        if self.error is not None:
            raise AssertionError(f"daemon failed to boot: {self.error}")
        return self.port

    def last_recovered(self) -> Dict[str, int]:
        """Tenant -> replayed-batch count of the latest boot's WAL
        recovery (empty when nothing was recovered)."""
        assert self.last_service is not None
        return dict(self.last_service.recovered)

    def shutdown(self, timeout: float = 15.0) -> None:
        if self._thread is None:
            return
        deadline = time.monotonic() + timeout
        while self._thread.is_alive() and time.monotonic() < deadline:
            try:
                with ServiceClient(port=self.port, timeout=5.0,
                                   max_retries=0) as client:
                    client.shutdown()
            except (ServiceError, OSError):
                time.sleep(0.05)  # mid-restart: try again shortly
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "daemon thread did not exit"


class FlakyProxy:
    """TCP proxy that cuts the first ``drops`` connections mid-stream.

    Each doomed connection is severed once ``drop_after_bytes`` of
    client->daemon traffic have passed; ``delay`` sleeps per forwarded
    chunk to simulate a slow link.  Later connections pass through
    untouched, so a reconnecting client always makes progress.
    """

    def __init__(self, target_port: int, drops: int = 0,
                 drop_after_bytes: int = 4096,
                 delay: float = 0.0) -> None:
        self.target_port = target_port
        self.drops_left = drops
        self.drop_after_bytes = drop_after_bytes
        self.delay = delay
        self.connections = 0
        self._closing = False
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            try:
                upstream = socket.create_connection(
                    ("127.0.0.1", self.target_port), timeout=10)
            except OSError:
                client.close()
                continue
            doomed = self.drops_left > 0
            if doomed:
                self.drops_left -= 1
            state = {"sent": 0}
            for src, dst, counted in ((client, upstream, doomed),
                                      (upstream, client, False)):
                threading.Thread(target=self._pump,
                                 args=(src, dst, state, counted),
                                 daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket,
              state: dict, counted: bool) -> None:
        try:
            while True:
                data = src.recv(4096)
                if not data:
                    break
                if self.delay:
                    time.sleep(self.delay)
                if counted:
                    state["sent"] += len(data)
                    if state["sent"] >= self.drop_after_bytes:
                        break  # sever mid-stream
                dst.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (src, dst):
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
