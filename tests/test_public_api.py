"""Contract tests for the public API surface."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing {name}"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_partitioners_share_base(self):
        from repro import StreamingPartitioner

        for cls_name in ("HashPartitioner", "GridPartitioner",
                         "DBHPartitioner", "HDRFPartitioner",
                         "GreedyPartitioner", "OneDimPartitioner",
                         "TwoDimPartitioner", "NEPartitioner",
                         "JaBeJaVCPartitioner", "PowerLyraPartitioner",
                         "AdwisePartitioner"):
            cls = getattr(repro, cls_name)
            assert issubclass(cls, StreamingPartitioner), cls_name
            assert cls.name != "abstract", cls_name

    def test_algorithm_names_unique(self):
        from repro.engine import algorithms

        names = [getattr(algorithms, n).name for n in algorithms.__all__]
        assert len(names) == len(set(names))

    def test_session_facade_exported(self):
        from repro import (
            Assignment,
            PartitionSession,
            SessionError,
            SessionSnapshot,
            SessionStats,
            open_session,
            restore_session,
        )

        session = open_session(algorithm="hdrf", partitions=4)
        assert isinstance(session, PartitionSession)
        emitted = session.ingest([(0, 1), (1, 2)])
        assert all(isinstance(a, Assignment) for a in emitted)
        assert isinstance(session.stats(), SessionStats)
        assert isinstance(session.snapshot(), SessionSnapshot)
        restored = restore_session(session.snapshot())
        assert isinstance(restored, PartitionSession)
        with pytest.raises(SessionError):
            open_session(algorithm="no-such-algorithm", partitions=4)

    def test_offline_algorithms_refuse_sessions(self):
        from repro import open_session, SessionError

        for algorithm in ("ne", "jabeja"):
            with pytest.raises(SessionError):
                open_session(algorithm=algorithm, partitions=4)


@pytest.mark.parametrize("module", [
    "repro.graph", "repro.graph.graph", "repro.graph.io",
    "repro.graph.stream", "repro.graph.generators", "repro.graph.stats",
    "repro.graph.metis",
    "repro.core", "repro.core.adwise", "repro.core.window",
    "repro.core.adaptive", "repro.core.scoring", "repro.core.spotlight",
    "repro.partitioning", "repro.partitioning.state",
    "repro.partitioning.base", "repro.partitioning.metrics",
    "repro.partitioning.parallel", "repro.partitioning.restream",
    "repro.partitioning.hovercut", "repro.partitioning.validate",
    "repro.partitioning.partition_io",
    "repro.engine", "repro.engine.placement", "repro.engine.cost",
    "repro.engine.runtime", "repro.engine.vertex_program",
    "repro.engine.algorithms",
    "repro.bench", "repro.bench.workloads", "repro.bench.harness",
    "repro.bench.reporting", "repro.bench.charts",
    "repro.simtime", "repro.util", "repro.cli",
    "repro.api", "repro.service", "repro.service.server",
    "repro.service.client", "repro.service.metrics",
    "repro.service.audit",
])
def test_module_imports_cleanly(module):
    importlib.import_module(module)


@pytest.mark.parametrize("module", [
    "repro.core.adwise", "repro.core.window", "repro.core.adaptive",
    "repro.core.scoring", "repro.partitioning.hdrf",
    "repro.partitioning.hovercut", "repro.engine.runtime",
])
def test_module_has_docstring(module):
    mod = importlib.import_module(module)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 40
