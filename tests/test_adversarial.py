"""Failure-injection and adversarial-input tests.

Streaming partitioners run unattended inside loading pipelines; they must
behave sensibly on degenerate graphs, hostile stream orders, duplicate
edges, and corrupt files rather than silently corrupting state.
"""

import pytest

from repro.graph.graph import Edge, Graph
from repro.graph.io import read_graph
from repro.graph.stream import InMemoryEdgeStream, shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.validate import validate_result

PARTITIONERS = [
    lambda: HashPartitioner(range(4)),
    lambda: DBHPartitioner(range(4)),
    lambda: HDRFPartitioner(range(4)),
    lambda: AdwisePartitioner(range(4), fixed_window=8),
]
IDS = ["hash", "dbh", "hdrf", "adwise"]


@pytest.mark.parametrize("make", PARTITIONERS, ids=IDS)
class TestDegenerateStreams:
    def test_duplicate_edges(self, make):
        """The same edge repeated must not corrupt size accounting."""
        stream = InMemoryEdgeStream([Edge(1, 2)] * 10)
        result = make().partition_stream(stream)
        assert result.state.assigned_edges == 10
        assert sum(result.state.partition_edges.values()) == 10
        # A repeated edge never needs more than one replica per endpoint
        # beyond the partitions it was actually assigned to.
        assert result.state.replicas(1) <= set(range(4))

    def test_single_vertex_pair(self, make):
        stream = InMemoryEdgeStream([Edge(0, 1)])
        result = make().partition_stream(stream)
        assert len(result.assignments) == 1

    def test_star_burst(self, make):
        """A hub with thousands of spokes (worst-case degree skew)."""
        stream = InMemoryEdgeStream([Edge(0, i) for i in range(1, 2001)])
        result = make().partition_stream(stream)
        assert result.state.assigned_edges == 2000
        # The hub is replicated at most k times.
        assert len(result.state.replicas(0)) <= 4

    def test_disconnected_pairs(self, make):
        """A perfect matching — no locality whatsoever."""
        stream = InMemoryEdgeStream(
            [Edge(2 * i, 2 * i + 1) for i in range(500)])
        result = make().partition_stream(stream)
        assert result.replication_degree == 1.0

    def test_path_worst_case_order(self, make):
        """A long path delivered from both ends inward."""
        edges = [Edge(i, i + 1) for i in range(400)]
        woven = []
        lo, hi = 0, len(edges) - 1
        while lo <= hi:
            woven.append(edges[lo])
            if lo != hi:
                woven.append(edges[hi])
            lo, hi = lo + 1, hi - 1
        result = make().partition_stream(InMemoryEdgeStream(woven))
        report = validate_result(result)
        assert report.ok

    def test_sorted_adversarial_ids(self, make):
        """Vertex ids chosen to collide under naive modulo hashing.

        Locality-aware strategies may legitimately keep the whole path on
        one partition (it is perfectly local); the invariant is internal
        consistency, not spread.
        """
        stream = InMemoryEdgeStream(
            [Edge(4 * i, 4 * i + 4) for i in range(300)])
        result = make().partition_stream(stream)
        assert validate_result(result).ok
        assert result.replication_degree < 2.0  # a path is easy


class TestAdwiseRobustness:
    def test_huge_window_tiny_stream(self):
        """Window far larger than the stream must still terminate."""
        stream = InMemoryEdgeStream([Edge(i, i + 1) for i in range(10)])
        result = AdwisePartitioner(
            range(4), fixed_window=1000).partition_stream(stream)
        assert result.state.assigned_edges == 10

    def test_extreme_epsilon(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = AdwisePartitioner(
            range(4), fixed_window=8,
            epsilon=1.0).partition_stream(stream)
        assert result.state.assigned_edges == len(stream)

    def test_single_candidate_budget(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = AdwisePartitioner(
            range(4), fixed_window=16,
            max_candidates=1).partition_stream(stream)
        assert result.state.assigned_edges == len(stream)

    def test_negative_latency_preference_rejected(self):
        partitioner = AdwisePartitioner(range(2),
                                        latency_preference_ms=-5.0)
        with pytest.raises(ValueError):
            partitioner.partition_stream(InMemoryEdgeStream([Edge(0, 1)]))


class TestCorruptFiles:
    def test_truncated_edge_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n3\n")
        with pytest.raises(ValueError):
            read_graph(path)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_bytes(b"\x00\x01garbage\xff")
        with pytest.raises((ValueError, UnicodeDecodeError)):
            read_graph(path)
