"""Unit tests for the single-edge streaming baseline partitioners."""

import pytest

from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream, shuffled
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.onedim import OneDimPartitioner, TwoDimPartitioner
from repro.partitioning.metrics import (
    partition_sizes,
    replica_sets_from_assignments,
)

ALL_BASELINES = [
    HashPartitioner,
    GridPartitioner,
    DBHPartitioner,
    HDRFPartitioner,
    GreedyPartitioner,
    OneDimPartitioner,
    TwoDimPartitioner,
]


@pytest.mark.parametrize("cls", ALL_BASELINES)
class TestCommonContract:
    """Every baseline obeys the streaming-partitioner contract."""

    def test_every_edge_assigned_to_valid_partition(self, cls, small_stream):
        partitioner = cls(range(4))
        result = partitioner.partition_stream(small_stream)
        assert len(result.assignments) == len(small_stream)
        assert all(p in {0, 1, 2, 3} for p in result.assignments.values())

    def test_partition_sizes_sum_to_edge_count(self, cls, small_stream):
        partitioner = cls(range(4))
        result = partitioner.partition_stream(small_stream)
        assert sum(result.state.partition_edges.values()) == len(small_stream)

    def test_deterministic(self, cls, small_powerlaw):
        stream_a = shuffled(small_powerlaw.edges(), seed=3)
        stream_b = shuffled(small_powerlaw.edges(), seed=3)
        result_a = cls(range(4)).partition_stream(stream_a)
        result_b = cls(range(4)).partition_stream(stream_b)
        assert result_a.assignments == result_b.assignments

    def test_replication_degree_at_least_one(self, cls, small_stream):
        result = cls(range(4)).partition_stream(small_stream)
        assert result.replication_degree >= 1.0

    def test_latency_charged(self, cls, small_stream):
        result = cls(range(4)).partition_stream(small_stream)
        assert result.latency_ms > 0.0

    def test_respects_restricted_spread(self, cls, small_stream):
        partitioner = cls([5, 9])
        result = partitioner.partition_stream(small_stream)
        assert set(result.assignments.values()) <= {5, 9}


class TestHash:
    def test_same_edge_same_partition(self):
        p = HashPartitioner(range(8))
        a = p.select_partition(Edge(1, 2))
        b = p.select_partition(Edge(1, 2))
        assert a == b

    def test_orientation_invariant(self):
        p = HashPartitioner(range(8))
        assert p.select_partition(Edge(1, 2)) == p.select_partition(Edge(2, 1))

    def test_roughly_balanced(self, small_stream):
        result = HashPartitioner(range(4)).partition_stream(small_stream)
        sizes = result.state.partition_edges
        expected = len(small_stream) / 4
        assert all(abs(s - expected) < expected * 0.5 for s in sizes.values())


class TestDBH:
    def test_low_degree_endpoint_anchors(self):
        p = DBHPartitioner(range(4))
        # Make vertex 1 high-degree.
        for other in range(2, 8):
            p.partition_edge(Edge(1, other))
        # Edge (1, 99): 99 has lower degree, so assignment hashes 99.
        target = p.partition_edge(Edge(1, 99))
        q = DBHPartitioner(range(4))
        # In a fresh partitioner where 99 has degree 1 vs 100's 0, the
        # anchor differs; we simply verify determinism of the rule:
        assert target in range(4)

    def test_spoke_edges_follow_low_degree_vertices(self, star):
        """All star edges hash the spoke (degree-1), not the hub."""
        p = DBHPartitioner(range(4))
        result = p.partition_stream(InMemoryEdgeStream(star.edge_list()))
        replicas = replica_sets_from_assignments(result.assignments)
        # Each spoke has exactly one replica.
        for spoke in range(1, 6):
            assert len(replicas[spoke]) == 1


class TestHDRF:
    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            HDRFPartitioner(range(2), lam=-1.0)

    def test_replication_score_prefers_existing_replicas(self):
        p = HDRFPartitioner(range(2))
        p.state.observe_degrees(Edge(1, 2))
        p.state.assign(Edge(1, 2), 0)
        p.state.observe_degrees(Edge(1, 3))
        assert (p.replication_score(Edge(1, 3), 0)
                > p.replication_score(Edge(1, 3), 1))

    def test_degree_weighting_favors_low_degree_endpoint(self):
        p = HDRFPartitioner(range(2))
        # Vertex 1 high degree, vertex 9 low degree; both replicated on 0.
        for other in range(2, 8):
            p.state.observe_degrees(Edge(1, other))
        p.state.observe_degrees(Edge(9, 10))
        p.state.assign(Edge(1, 2), 0)
        p.state.assign(Edge(9, 10), 0)
        p.state.observe_degrees(Edge(1, 9))
        # theta favors keeping the low-degree vertex (9) local: its term
        # (1 + 1 - theta_9) exceeds vertex 1's.
        score = p.replication_score(Edge(1, 9), 0)
        assert score > 2.0  # both endpoints replicated, with degree bonus

    def test_balance_score_prefers_empty_partition(self):
        p = HDRFPartitioner(range(2))
        p.state.assign(Edge(5, 6), 0)
        assert p.balance_score(1) > p.balance_score(0)

    def test_beats_hash_on_replication(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=5)
        hdrf = HDRFPartitioner(range(8)).partition_stream(stream)
        hashed = HashPartitioner(range(8)).partition_stream(stream)
        assert hdrf.replication_degree < hashed.replication_degree

    def test_stays_balanced(self, small_stream):
        result = HDRFPartitioner(range(4)).partition_stream(small_stream)
        assert result.imbalance < 0.2


class TestGreedy:
    def test_shared_partition_preferred(self):
        p = GreedyPartitioner(range(3))
        p.partition_edge(Edge(1, 2))
        first = p.state.replicas(1) & p.state.replicas(2)
        # Next edge between the same vertices must go to the shared partition.
        assert p.select_partition(Edge(1, 2)) in first

    def test_single_known_endpoint_follows_replica(self):
        p = GreedyPartitioner(range(3))
        target = p.partition_edge(Edge(1, 2))
        assert p.select_partition(Edge(1, 99)) == target

    def test_unknown_edge_goes_least_loaded(self):
        p = GreedyPartitioner(range(3))
        p.state.assign(Edge(50, 51), 0)
        p.state.assign(Edge(52, 53), 1)
        assert p.select_partition(Edge(98, 99)) == 2


class TestGrid:
    def test_candidate_sets_intersect(self):
        p = GridPartitioner(range(9))
        cell_u = p._cell_of(1)
        cell_v = p._cell_of(2)
        inter = p._constraint_set(cell_u) & p._constraint_set(cell_v)
        assert inter  # 3x3 grid: row+column always intersect

    def test_bounded_replication_per_vertex(self, small_stream):
        result = GridPartitioner(range(16)).partition_stream(small_stream)
        replicas = replica_sets_from_assignments(result.assignments)
        # Grid bounds each vertex's replicas by 2*sqrt(k) - 1 = 7.
        assert all(len(r) <= 7 for r in replicas.values())


class TestOneTwoDim:
    def test_onedim_source_vertex_single_partition(self, small_stream):
        result = OneDimPartitioner(range(8)).partition_stream(small_stream)
        by_source = {}
        for edge, p in result.assignments.items():
            by_source.setdefault(edge.u, set()).add(p)
        assert all(len(ps) == 1 for ps in by_source.values())

    def test_twodim_bounded_by_grid(self, small_stream):
        result = TwoDimPartitioner(range(16)).partition_stream(small_stream)
        replicas = replica_sets_from_assignments(result.assignments)
        assert all(len(r) <= 8 for r in replicas.values())
