"""Condition-polling helpers shared by the daemon/CLI tests.

Fixed sleeps make slow-CI flakes; these helpers wait for the *condition*
instead, with a hard deadline so a genuine hang still fails fast."""

from __future__ import annotations

import time
from typing import Callable


def wait_until(predicate: Callable[[], bool], timeout: float = 10.0,
               interval: float = 0.02, message: str = "condition") -> None:
    """Poll ``predicate`` until it returns True or ``timeout`` expires."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    if predicate():  # one last check after the deadline
        return
    raise AssertionError(
        f"timed out after {timeout:.1f}s waiting for {message}")
