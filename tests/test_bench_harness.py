"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.stream import shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.bench.harness import (
    ExperimentConfig,
    check_balance,
    replication_sweep,
    run_partitioning,
    spotlight_sweep,
    stacked_latency_experiment,
)
from repro.bench.workloads import (
    GraphSpec,
    PAPER_GRAPHS,
    adwise_factory,
    baseline_factories,
)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster_graph(n=150, m=3, p=0.8, seed=2)


@pytest.fixture
def stream_factory(graph):
    return lambda: shuffled(graph.edges(), seed=4)


CONFIGS = [
    ExperimentConfig("HDRF",
                     lambda parts, clock: HDRFPartitioner(parts, clock=clock)),
    ExperimentConfig("ADWISE",
                     lambda parts, clock: AdwisePartitioner(
                         parts, clock=clock, fixed_window=8)),
]


class TestRunPartitioning:
    def test_runs_with_paper_defaults(self, stream_factory):
        result = run_partitioning(CONFIGS[0].factory, stream_factory(),
                                  num_partitions=8, num_instances=4,
                                  spread=2)
        assert result.num_instances == 4
        assert sum(result.partition_sizes.values()) == len(stream_factory())

    def test_check_balance_passes_when_balanced(self, stream_factory):
        result = run_partitioning(CONFIGS[0].factory, stream_factory(),
                                  num_partitions=8, num_instances=4,
                                  spread=2)
        check_balance(result, limit=0.8)

    def test_check_balance_raises_with_detail(self, stream_factory):
        result = run_partitioning(CONFIGS[0].factory, stream_factory(),
                                  num_partitions=8, num_instances=4,
                                  spread=2)
        with pytest.raises(AssertionError, match="imbalance"):
            check_balance(result, limit=0.0)


class TestStackedLatency:
    def test_rows_have_blocks(self, graph, stream_factory):
        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS,
            workload="pagerank", block_iterations=10, num_blocks=2,
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False)
        assert len(rows) == 2
        for row in rows:
            assert len(row.block_ms) == 2
            assert row.partitioning_ms > 0
            assert all(b > 0 for b in row.block_ms)

    def test_totals_accumulate(self, graph, stream_factory):
        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS,
            workload="pagerank", block_iterations=10, num_blocks=3,
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False)
        row = rows[0]
        assert (row.total_after_blocks(1) < row.total_after_blocks(2)
                < row.total_after_blocks(3) == row.total_ms)

    def test_program_factory_mode(self, graph, stream_factory):
        from repro.engine.algorithms import ConnectedComponents

        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS[:1],
            workload="pagerank", block_iterations=30, num_blocks=1,
            program_factory=lambda g: ConnectedComponents(),
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False)
        assert rows[0].block_ms[0] > 0

    def test_unknown_workload_rejected(self, graph, stream_factory):
        with pytest.raises(KeyError):
            stacked_latency_experiment(
                graph, stream_factory, CONFIGS, workload="nope",
                num_partitions=8, num_instances=4, spread=2)

    def test_measured_wall_next_to_simulated(self, graph, stream_factory):
        """measure_wall=True runs each block on the cluster runtime and
        records real wall-clock next to the simulated latency."""
        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS,
            workload="pagerank", block_iterations=5, num_blocks=2,
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False, measure_wall=True)
        for row in rows:
            assert len(row.block_wall_ms) == len(row.block_ms) == 2
            assert all(wall > 0 for wall in row.block_wall_ms)
            assert row.total_wall_ms == pytest.approx(
                sum(row.block_wall_ms))

    def test_measured_wall_with_program_factory(self, graph,
                                                stream_factory):
        from repro.engine.algorithms import ConnectedComponents

        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS[:1],
            workload="pagerank", block_iterations=30, num_blocks=1,
            program_factory=lambda g: ConnectedComponents(),
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False, measure_wall=True)
        assert rows[0].block_wall_ms[0] > 0

    def test_wall_defaults_off(self, graph, stream_factory):
        rows = stacked_latency_experiment(
            graph, stream_factory, CONFIGS[:1],
            workload="pagerank", block_iterations=5, num_blocks=1,
            num_partitions=8, num_instances=4, spread=2,
            enforce_balance=False)
        assert rows[0].block_wall_ms == []
        assert rows[0].total_wall_ms == 0.0


class TestReplicationSweep:
    def test_rows_match_configs(self, stream_factory):
        rows = replication_sweep(stream_factory, CONFIGS,
                                 num_partitions=8, num_instances=4,
                                 spread=2, enforce_balance=False)
        assert [r.label for r in rows] == ["HDRF", "ADWISE"]
        for row in rows:
            assert row.replication_degree >= 1.0
            assert row.block_ms == []


class TestSpotlightSweep:
    def test_shape_of_results(self, stream_factory):
        results = spotlight_sweep(stream_factory, CONFIGS, spreads=(2, 8),
                                  num_partitions=8, num_instances=4)
        assert set(results) == {"HDRF", "ADWISE"}
        for per_spread in results.values():
            assert set(per_spread) == {2, 8}


class TestWorkloadSpecs:
    def test_paper_graphs_registry(self):
        assert set(PAPER_GRAPHS) == {"orkut", "brain", "web"}

    @pytest.mark.parametrize("key", ["orkut", "brain", "web"])
    def test_specs_build_and_stream(self, key):
        spec = PAPER_GRAPHS[key]
        graph = spec.build()
        assert graph.num_edges > 1000
        stream = spec.stream()
        assert len(stream) == graph.num_edges

    def test_stream_orders_are_permutations(self):
        spec = PAPER_GRAPHS["web"]
        adjacency = list(spec.stream(order="adjacency"))
        local = list(spec.stream(order="local-shuffle"))
        shuffled_order = list(spec.stream(order="shuffled"))
        assert sorted(adjacency) == sorted(local) == sorted(shuffled_order)
        assert adjacency != local
        assert adjacency != shuffled_order

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            PAPER_GRAPHS["web"].stream(order="sorted")

    def test_orkut_disables_clustering_score(self):
        assert not PAPER_GRAPHS["orkut"].use_clustering_score
        assert PAPER_GRAPHS["brain"].use_clustering_score

    def test_adwise_factory_builds_partitioner(self):
        from repro.simtime import SimulatedClock

        factory = adwise_factory(100.0, use_clustering=False, fixed_window=4)
        partitioner = factory([0, 1], SimulatedClock())
        assert isinstance(partitioner, AdwisePartitioner)
        assert partitioner.latency_preference_ms == 100.0
        assert not partitioner.use_clustering

    def test_baseline_factories_complete(self):
        from repro.simtime import SimulatedClock

        factories = baseline_factories()
        assert set(factories) == {"Hash", "Grid", "DBH", "HDRF", "Greedy"}
        for factory in factories.values():
            partitioner = factory([0, 1], SimulatedClock())
            assert partitioner.partitions == [0, 1]
