"""Unit tests for PartitionState: the vertex cache and bookkeeping."""

import pytest

from repro.graph.graph import Edge
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.state import (
    PartitionState,
    StateSnapshot,
    merged_replication_degree,
)


class TestConstruction:
    def test_requires_partitions(self):
        with pytest.raises(ValueError):
            PartitionState([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PartitionState([1, 1, 2])

    def test_initial_sizes_zero(self):
        state = PartitionState([0, 1, 2])
        assert state.max_size == 0
        assert state.min_size == 0
        assert state.imbalance() == 0.0


class TestAssign:
    def test_assign_updates_replicas(self):
        state = PartitionState([0, 1])
        changed = state.assign(Edge(10, 20), 0)
        assert set(changed) == {10, 20}
        assert state.replicas(10) == {0}
        assert state.replicas(20) == {0}

    def test_assign_same_partition_no_new_replica(self):
        state = PartitionState([0, 1])
        state.assign(Edge(10, 20), 0)
        changed = state.assign(Edge(10, 30), 0)
        assert changed == [30]
        assert state.replicas(10) == {0}

    def test_assign_other_partition_replicates(self):
        state = PartitionState([0, 1])
        state.assign(Edge(10, 20), 0)
        state.assign(Edge(10, 30), 1)
        assert state.replicas(10) == {0, 1}

    def test_assign_outside_spread_rejected(self):
        state = PartitionState([0, 1])
        with pytest.raises(ValueError):
            state.assign(Edge(1, 2), 5)

    def test_assigned_edges_counter(self):
        state = PartitionState([0])
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(2, 3), 0)
        assert state.assigned_edges == 2


class TestSizes:
    def test_incremental_max_min(self):
        state = PartitionState([0, 1, 2])
        state.assign(Edge(1, 2), 0)
        assert state.max_size == 1
        assert state.min_size == 0
        state.assign(Edge(2, 3), 1)
        state.assign(Edge(3, 4), 2)
        assert state.min_size == 1
        assert state.max_size == 1

    def test_sizes_match_bruteforce(self):
        state = PartitionState([0, 1, 2, 3])
        import random
        rng = random.Random(0)
        for i in range(200):
            state.assign(Edge(i, i + 1), rng.choice([0, 1, 2, 3]))
            assert state.max_size == max(state.partition_edges.values())
            assert state.min_size == min(state.partition_edges.values())

    def test_imbalance_formula(self):
        state = PartitionState([0, 1])
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(2, 3), 0)
        state.assign(Edge(3, 4), 1)
        assert state.imbalance() == pytest.approx(0.5)


class TestDegrees:
    def test_observe_degrees(self):
        state = PartitionState([0])
        state.observe_degrees(Edge(1, 2))
        state.observe_degrees(Edge(1, 3))
        assert state.degree_of(1) == 2
        assert state.degree_of(2) == 1
        assert state.degree_of(99) == 0

    def test_max_degree_tracks(self):
        state = PartitionState([0])
        assert state.max_degree == 1
        for other in range(2, 7):
            state.observe_degrees(Edge(1, other))
        assert state.max_degree == 5

    def test_copy_degrees(self):
        src = PartitionState([0])
        src.observe_degrees(Edge(1, 2))
        dst = PartitionState([0, 1])
        dst.copy_degrees_from(src)
        assert dst.degree_of(1) == 1
        assert dst.max_degree == src.max_degree


class TestReplicationDegree:
    def test_single_partition_degree_one(self):
        state = PartitionState([0])
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(2, 3), 0)
        assert state.replication_degree() == 1.0

    def test_cut_vertex_counts_twice(self):
        state = PartitionState([0, 1])
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(1, 3), 1)
        # R_1 = {0,1}, R_2 = {0}, R_3 = {1} -> (2+1+1)/3
        assert state.replication_degree() == pytest.approx(4 / 3)

    def test_empty_state_zero(self):
        assert PartitionState([0]).replication_degree() == 0.0

    def test_merged_replication_degree(self):
        a = PartitionState([0, 1])
        b = PartitionState([2, 3])
        a.assign(Edge(1, 2), 0)
        b.assign(Edge(1, 3), 2)
        # Union: R_1 = {0,2}, R_2 = {0}, R_3 = {2}
        assert merged_replication_degree([a, b]) == pytest.approx(4 / 3)

    def test_merged_empty(self):
        assert merged_replication_degree([]) == 0.0


def _populated(cls):
    state = cls([0, 1, 2])
    for edge, p in [(Edge(1, 2), 0), (Edge(2, 3), 1), (Edge(1, 3), 0),
                    (Edge(4, 5), 2), (Edge(1, 4), 1)]:
        state.observe_degrees(edge)
        state.assign(edge, p)
    return state


@pytest.mark.parametrize("cls", [PartitionState, FastPartitionState],
                         ids=["legacy", "fast"])
class TestSnapshotRoundTrip:
    def test_round_trip_preserves_everything(self, cls):
        state = _populated(cls)
        back = cls.from_snapshot(state.snapshot())
        assert back.replica_sets == state.replica_sets
        assert back.partition_edges == state.partition_edges
        assert back.degree == state.degree
        assert back.max_degree == state.max_degree
        assert back.assigned_edges == state.assigned_edges
        assert back.max_size == state.max_size
        assert back.min_size == state.min_size
        assert back.replication_degree() == state.replication_degree()

    def test_round_trip_survives_pickle(self, cls):
        import pickle

        state = _populated(cls)
        snap = pickle.loads(pickle.dumps(state.snapshot()))
        back = cls.from_snapshot(snap)
        assert back.replica_sets == state.replica_sets

    def test_restored_state_accepts_further_assignments(self, cls):
        state = _populated(cls)
        back = cls.from_snapshot(state.snapshot())
        back.observe_degrees(Edge(6, 7))
        changed = back.assign(Edge(6, 7), 2)
        assert set(changed) == {6, 7}
        assert back.assigned_edges == state.assigned_edges + 1

    def test_cross_class_restore(self, cls):
        """A snapshot from either flavour restores into the other."""
        other = FastPartitionState if cls is PartitionState else PartitionState
        state = _populated(cls)
        back = other.from_snapshot(state.snapshot())
        assert back.replica_sets == state.replica_sets
        assert back.partition_edges == state.partition_edges

    def test_empty_state_round_trip(self, cls):
        state = cls([0, 1])
        back = cls.from_snapshot(state.snapshot())
        assert back.replica_sets == {}
        assert back.partition_edges == {0: 0, 1: 0}
        assert back.assigned_edges == 0


class TestSnapshotMerge:
    def test_disjoint_spreads_union(self):
        a = PartitionState([0, 1])
        b = PartitionState([2, 3])
        for edge, p in [(Edge(1, 2), 0), (Edge(2, 3), 1)]:
            a.observe_degrees(edge)
            a.assign(edge, p)
        for edge, p in [(Edge(1, 3), 2)]:
            b.observe_degrees(edge)
            b.assign(edge, p)
        merged = StateSnapshot.merge([a.snapshot(), b.snapshot()],
                                     partitions=[0, 1, 2, 3])
        assert merged.replica_sets() == {1: {0, 2}, 2: {0, 1}, 3: {1, 2}}
        assert merged.partition_edges == {0: 1, 1: 1, 2: 1, 3: 0}
        assert merged.assigned_edges == 3
        # Degrees are summed: each instance saw a disjoint chunk.
        assert merged.degree == {1: 2, 2: 2, 3: 2}

    def test_overlapping_spreads_union_not_double_count(self):
        a = PartitionState([0, 1])
        b = PartitionState([1, 2])
        a.assign(Edge(1, 2), 1)
        b.assign(Edge(1, 2), 1)
        merged = StateSnapshot.merge([a.snapshot(), b.snapshot()])
        assert merged.replica_sets() == {1: {1}, 2: {1}}
        assert merged.partition_edges[1] == 2

    def test_merge_order_of_partition_ids_is_deterministic(self):
        a = PartitionState([3, 1])
        b = PartitionState([2, 0])
        merged = StateSnapshot.merge([a.snapshot(), b.snapshot()])
        assert merged.partitions == [3, 1, 2, 0]  # first-seen order
        explicit = StateSnapshot.merge([a.snapshot(), b.snapshot()],
                                       partitions=[0, 1, 2, 3])
        assert explicit.partitions == [0, 1, 2, 3]

    def test_merge_requires_partitions(self):
        with pytest.raises(ValueError):
            StateSnapshot.merge([])

    def test_merged_snapshot_restores(self):
        a = _populated(PartitionState)
        b = _populated(FastPartitionState)
        merged = StateSnapshot.merge([a.snapshot(), b.snapshot()])
        state = PartitionState.from_snapshot(merged)
        assert state.assigned_edges == 10
        assert state.replica_sets == merged.replica_sets()
