"""Unit tests for edge streams and chunking."""

import pytest

from repro.graph.graph import Edge
from repro.graph.io import write_edges
from repro.graph.stream import (
    FileEdgeStream,
    InMemoryEdgeStream,
    chunk_stream,
    interleave_chunks,
    shuffled,
)


class TestInMemoryStream:
    def test_length_and_iteration(self):
        stream = InMemoryEdgeStream([Edge(0, 1), Edge(1, 2)])
        assert len(stream) == 2
        assert list(stream) == [Edge(0, 1), Edge(1, 2)]

    def test_multiple_iterations_allowed(self):
        stream = InMemoryEdgeStream([Edge(0, 1)])
        assert list(stream) == list(stream)

    def test_accepts_tuples(self):
        stream = InMemoryEdgeStream([(4, 5)])
        assert list(stream) == [Edge(4, 5)]


class TestFileStream:
    def test_length_from_line_count(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(0, 1), (1, 2), (2, 3)])
        stream = FileEdgeStream(path)
        assert len(stream) == 3
        assert list(stream) == [Edge(0, 1), Edge(1, 2), Edge(2, 3)]


class TestShuffled:
    def test_preserves_multiset(self, small_powerlaw):
        edges = small_powerlaw.edge_list()
        stream = shuffled(edges, seed=1)
        assert sorted(stream) == sorted(edges)

    def test_deterministic_for_seed(self, small_powerlaw):
        edges = small_powerlaw.edge_list()
        assert list(shuffled(edges, seed=5)) == list(shuffled(edges, seed=5))

    def test_different_seeds_differ(self, small_powerlaw):
        edges = small_powerlaw.edge_list()
        assert list(shuffled(edges, seed=1)) != list(shuffled(edges, seed=2))


class TestChunkStream:
    def test_chunks_cover_stream(self):
        stream = InMemoryEdgeStream([Edge(i, i + 1) for i in range(10)])
        chunks = chunk_stream(stream, 3)
        assert len(chunks) == 3
        merged = [e for chunk in chunks for e in chunk]
        assert merged == list(stream)

    def test_chunk_sizes_near_equal(self):
        stream = InMemoryEdgeStream([Edge(i, i + 1) for i in range(10)])
        sizes = [len(c) for c in chunk_stream(stream, 3)]
        assert sizes == [4, 3, 3]

    def test_more_chunks_than_edges(self):
        stream = InMemoryEdgeStream([Edge(0, 1)])
        chunks = chunk_stream(stream, 4)
        assert [len(c) for c in chunks] == [1, 0, 0, 0]

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_stream(InMemoryEdgeStream([]), 0)

    def test_interleave_restores_edge_multiset(self):
        stream = InMemoryEdgeStream([Edge(i, i + 1) for i in range(9)])
        chunks = chunk_stream(stream, 3)
        merged = interleave_chunks(chunks)
        assert sorted(merged) == sorted(stream)
