"""Tests for the super-linear comparators: NE, Ja-Be-Ja-VC, PowerLyra."""

import pytest

from repro.graph.graph import Edge, Graph
from repro.graph.stream import InMemoryEdgeStream, shuffled
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.jabeja import JaBeJaVCPartitioner
from repro.partitioning.ne import NEPartitioner
from repro.partitioning.powerlyra import PowerLyraPartitioner
from repro.partitioning.metrics import replica_sets_from_assignments


class TestNE:
    def test_all_edges_assigned(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        result = NEPartitioner(range(4)).partition_stream(stream)
        assert len(result.assignments) == len(stream)
        assert sum(result.state.partition_edges.values()) == len(stream)

    def test_deterministic(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        a = NEPartitioner(range(4), seed=1).partition_stream(stream)
        b = NEPartitioner(range(4), seed=1).partition_stream(stream)
        assert a.assignments == b.assignments

    def test_perfectly_balanced(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        result = NEPartitioner(range(4)).partition_stream(stream)
        sizes = result.state.partition_edges.values()
        assert max(sizes) - min(sizes) <= 1

    def test_beats_hdrf_quality(self, small_clustered):
        """NE is the all-edge quality reference (Fig. 1 upper right)."""
        stream = shuffled(small_clustered.edges(), seed=3)
        ne = NEPartitioner(range(8)).partition_stream(stream)
        hdrf = HDRFPartitioner(range(8)).partition_stream(stream)
        assert ne.replication_degree < hdrf.replication_degree

    def test_keeps_clique_together(self):
        """A clique fitting in one partition's capacity stays whole."""
        clique = Graph([(a, b) for a in range(5) for b in range(a + 1, 5)])
        extra = Graph([(10 + i, 20 + i) for i in range(10)])
        edges = clique.edge_list() + extra.edge_list()
        result = NEPartitioner(range(2)).partition_stream(
            InMemoryEdgeStream(edges))
        clique_parts = {result.assignments[e] for e in clique.edges()}
        assert len(clique_parts) == 1

    def test_single_partition(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = NEPartitioner([0]).partition_stream(stream)
        assert result.replication_degree == 1.0

    def test_select_partition_not_supported(self):
        with pytest.raises(NotImplementedError):
            NEPartitioner(range(2)).select_partition(Edge(1, 2))


class TestJaBeJaVC:
    def test_all_edges_assigned(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = JaBeJaVCPartitioner(range(4),
                                     rounds=3).partition_stream(stream)
        assert len(result.assignments) == len(stream)

    def test_preserves_hash_balance(self, small_powerlaw):
        """Swaps preserve partition sizes exactly."""
        stream = shuffled(small_powerlaw.edges(), seed=3)
        start = HashPartitioner(range(4)).partition_stream(stream)
        refined = JaBeJaVCPartitioner(range(4), rounds=4,
                                      seed=0).partition_stream(stream)
        assert (sorted(start.state.partition_edges.values())
                == sorted(refined.state.partition_edges.values()))

    def test_improves_over_hash(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        hashed = HashPartitioner(range(4)).partition_stream(stream)
        refined = JaBeJaVCPartitioner(range(4), rounds=6,
                                      seed=0).partition_stream(stream)
        assert refined.replication_degree < hashed.replication_degree

    def test_zero_rounds_equals_hash_start(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        refined = JaBeJaVCPartitioner(range(4), rounds=0,
                                      seed=7).partition_stream(stream)
        hashed = HashPartitioner(range(4), seed=7).partition_stream(stream)
        assert refined.assignments == hashed.assignments

    def test_more_rounds_not_worse(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        few = JaBeJaVCPartitioner(range(4), rounds=2,
                                  seed=0).partition_stream(stream)
        many = JaBeJaVCPartitioner(range(4), rounds=8,
                                   seed=0).partition_stream(stream)
        assert many.replication_degree <= few.replication_degree * 1.03

    def test_validation(self):
        with pytest.raises(ValueError):
            JaBeJaVCPartitioner(range(2), rounds=-1)
        with pytest.raises(ValueError):
            JaBeJaVCPartitioner(range(2), sample_size=0)
        with pytest.raises(ValueError):
            JaBeJaVCPartitioner(range(2), cooling=0.0)

    def test_select_partition_not_supported(self):
        with pytest.raises(NotImplementedError):
            JaBeJaVCPartitioner(range(2)).select_partition(Edge(1, 2))


class TestPowerLyra:
    def test_all_edges_assigned(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = PowerLyraPartitioner(range(4)).partition_stream(stream)
        assert len(result.assignments) == len(stream)

    def test_low_degree_destination_groups_edges(self, star):
        """Spokes are low-degree destinations: each keeps one replica."""
        result = PowerLyraPartitioner(range(4)).partition_stream(
            InMemoryEdgeStream(star.edge_list()))
        replicas = replica_sets_from_assignments(result.assignments)
        for spoke in range(1, 6):
            assert len(replicas[spoke]) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PowerLyraPartitioner(range(2), degree_threshold=0)

    def test_beats_plain_hash(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        hybrid = PowerLyraPartitioner(range(8)).partition_stream(stream)
        hashed = HashPartitioner(range(8)).partition_stream(stream)
        assert hybrid.replication_degree < hashed.replication_degree

    def test_deterministic(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        a = PowerLyraPartitioner(range(4)).partition_stream(stream)
        b = PowerLyraPartitioner(range(4)).partition_stream(stream)
        assert a.assignments == b.assignments
