"""Shard layout invariants: ShardedGraph / ShardCSR / routing tables.

The cluster runtime's correctness rests on structural guarantees made
here: shards partition the edge set, the owned masks partition the
vertex set, channel index tables are aligned pairwise, and the CSR's
``degrees`` view is the logical (global) degree while ``local_degrees``
is the physical shard layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.graph.graph import Edge, Graph
from repro.graph.shard import ShardedGraph
from repro.partitioning.hashing import HashPartitioner
from repro.graph.stream import shuffled


def hash_assignments(graph: Graph, k: int) -> dict:
    return {e: hash((e.u, e.v)) % k for e in graph.edges()}


@pytest.fixture
def sharded_powerlaw() -> tuple:
    graph = barabasi_albert_graph(n=250, m=3, seed=7)
    graph.add_vertex(4001)
    graph.add_vertex(4002)
    assignments = hash_assignments(graph, 4)
    sharded = ShardedGraph.from_assignments(
        assignments, partitions=range(4), vertices=graph.vertices())
    return graph, assignments, sharded


class TestConstruction:
    def test_edges_partition_exactly(self, sharded_powerlaw):
        graph, assignments, sharded = sharded_powerlaw
        shard_edges = []
        for shard in sharded.shards.values():
            csr = shard.csr
            for index in range(csr.num_vertices):
                u = csr.original_id(index)
                for neighbor in csr.neighbors(index):
                    v = csr.original_id(int(neighbor))
                    if u < v:
                        shard_edges.append(Edge(u, v))
        assert sorted(shard_edges) == sorted(assignments)
        # ... and each edge sits on the shard its assignment names.
        for edge, partition in assignments.items():
            csr = sharded.shards[partition].csr
            u_index = csr.index_of[edge.u]
            assert edge.v in {csr.original_id(int(n))
                              for n in csr.neighbors(u_index)}

    def test_vertex_replicas_match_incident_partitions(
            self, sharded_powerlaw):
        graph, assignments, sharded = sharded_powerlaw
        expected: dict = {}
        for edge, partition in assignments.items():
            for endpoint in (edge.u, edge.v):
                expected.setdefault(endpoint, set()).add(partition)
        for vertex, parts in expected.items():
            assert sharded.vertex_partitions[vertex] == sorted(parts)
            for partition in parts:
                assert vertex in sharded.shards[partition].csr.index_of

    def test_owned_masks_partition_vertices(self, sharded_powerlaw):
        graph, _, sharded = sharded_powerlaw
        owned_ids: list = []
        for shard in sharded.shards.values():
            owned_ids.extend(
                shard.csr.vertex_ids[shard.owned].tolist())
        assert sorted(owned_ids) == sorted(graph.vertices())

    def test_master_is_min_partition(self, sharded_powerlaw):
        _, _, sharded = sharded_powerlaw
        for vertex, parts in sharded.vertex_partitions.items():
            assert sharded.master_of(vertex) == min(parts)
            master_shard = sharded.shards[parts[0]]
            index = master_shard.csr.index_of[vertex]
            assert master_shard.owned[index]

    def test_isolated_vertices_placed_once(self, sharded_powerlaw):
        graph, _, sharded = sharded_powerlaw
        for vertex in (4001, 4002):
            parts = sharded.vertex_partitions[vertex]
            assert len(parts) == 1
            csr = sharded.shards[parts[0]].csr
            index = csr.index_of[vertex]
            assert csr.degrees[index] == 0
            assert csr.local_degrees[index] == 0

    def test_empty_assignment_rejected_without_partitions(self):
        with pytest.raises(ValueError):
            ShardedGraph.from_assignments({})

    def test_explicit_partitions_create_empty_shards(self):
        sharded = ShardedGraph.from_assignments(
            {Edge(0, 1): 0}, partitions=range(3))
        assert sharded.partitions == [0, 1, 2]
        assert sharded.shards[2].num_vertices == 0
        assert sharded.shards[2].num_edges == 0

    def test_tuple_keys_are_canonicalised(self):
        sharded = ShardedGraph.from_assignments({(5, 2): 0, (2, 3): 1})
        assert Edge(2, 5) in sharded.assignments
        assert sharded.vertex_partitions[2] == [0, 1]


class TestShardCSR:
    def test_degrees_are_global_local_degrees_physical(
            self, sharded_powerlaw):
        graph, _, sharded = sharded_powerlaw
        for shard in sharded.shards.values():
            csr = shard.csr
            for index in range(csr.num_vertices):
                vertex = csr.original_id(index)
                assert csr.degrees[index] == graph.degree(vertex)
                assert csr.local_degrees[index] == len(csr.neighbors(index))
            # Local degrees sum to the physical slot count; global
            # degrees can only exceed them (replicas see a subset).
            assert csr.local_degrees.sum() == len(csr.indices)
            assert (csr.degrees >= csr.local_degrees).all()

    def test_local_degrees_sum_to_global_over_shards(
            self, sharded_powerlaw):
        graph, _, sharded = sharded_powerlaw
        totals: dict = {}
        for shard in sharded.shards.values():
            csr = shard.csr
            for index in range(csr.num_vertices):
                vertex = csr.original_id(index)
                totals[vertex] = (totals.get(vertex, 0)
                                  + int(csr.local_degrees[index]))
        for vertex in graph.vertices():
            assert totals[vertex] == graph.degree(vertex)


class TestChannels:
    def test_channels_aligned_pairwise(self, sharded_powerlaw):
        _, _, sharded = sharded_powerlaw
        seen_any = False
        for partition, shard in sharded.shards.items():
            for mirror, master_idx in shard.master_channels.items():
                mirror_idx = sharded.shards[mirror].mirror_channels[partition]
                master_ids = shard.csr.vertex_ids[master_idx]
                mirror_ids = sharded.shards[mirror].csr.vertex_ids[mirror_idx]
                assert np.array_equal(master_ids, mirror_ids)
                # Sorted by global id -> strictly increasing.
                assert (np.diff(master_ids) > 0).all() or len(master_ids) <= 1
                seen_any = True
        assert seen_any, "expected at least one replicated vertex"

    def test_channel_membership_is_exactly_replication(
            self, sharded_powerlaw):
        _, _, sharded = sharded_powerlaw
        for vertex, parts in sharded.vertex_partitions.items():
            if len(parts) == 1:
                continue
            master = parts[0]
            for mirror in parts[1:]:
                ids = sharded.shards[master].csr.vertex_ids[
                    sharded.shards[master].master_channels[mirror]]
                assert vertex in ids

    def test_mirror_indices_marked_not_owned(self, sharded_powerlaw):
        _, _, sharded = sharded_powerlaw
        for shard in sharded.shards.values():
            for idx in shard.mirror_channels.values():
                assert not shard.owned[idx].any()


class TestIngestion:
    def test_from_result_partition_result(self, small_powerlaw):
        partitioner = HashPartitioner(list(range(4)))
        result = partitioner.partition_stream(
            shuffled(small_powerlaw.edges(), seed=3))
        sharded = ShardedGraph.from_result(
            result, vertices=small_powerlaw.vertices())
        assert sharded.partitions == [0, 1, 2, 3]
        assert sharded.num_edges == small_powerlaw.num_edges
        assert sharded.assignments == {
            e.canonical(): p for e, p in result.assignments.items()}

    def test_from_file_roundtrip(self, tmp_path, sharded_powerlaw):
        from repro.partitioning.partition_io import write_assignments
        graph, assignments, sharded = sharded_powerlaw
        path = tmp_path / "assignments.txt"
        write_assignments(path, assignments)
        reloaded = ShardedGraph.from_file(path, vertices=graph.vertices())
        assert reloaded.assignments == sharded.assignments
        assert reloaded.vertex_partitions == sharded.vertex_partitions

    def test_to_graph_roundtrip(self, sharded_powerlaw):
        graph, _, sharded = sharded_powerlaw
        rebuilt = sharded.to_graph()
        assert sorted(rebuilt.edges()) == sorted(graph.edges())
        assert sorted(rebuilt.vertices()) == sorted(graph.vertices())

    def test_replication_degree_counts_isolated_once(self):
        sharded = ShardedGraph.from_assignments(
            {Edge(0, 1): 0, Edge(1, 2): 1}, vertices=[0, 1, 2, 9])
        # Vertex 1 has two replicas; 0, 2 and isolated 9 have one each.
        assert sharded.replication_degree == pytest.approx(5 / 4)

    def test_placement_uses_same_master_rule(self, sharded_powerlaw):
        _, _, sharded = sharded_powerlaw
        placement = sharded.placement()
        for vertex, parts in sharded.vertex_partitions.items():
            if vertex in placement.vertex_partitions:
                machines = {placement.machine_of_partition[p]
                            for p in parts}
                assert placement.master_machine[vertex] == min(machines)
