"""Correctness tests for the vertex-centric workload algorithms."""

import math

import pytest

from repro.graph.graph import Graph
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.algorithms import (
    CliqueSearch,
    ConnectedComponents,
    CycleSearch,
    GreedyColoring,
    PageRank,
    SingleSourceShortestPaths,
)


def engine_for(graph: Graph, k: int = 4, machines: int = 2) -> Engine:
    """All-on-one-partition placement; correctness must not depend on it."""
    assignments = {e: hash((e.u, e.v)) % k for e in graph.edges()}
    placement = Placement(assignments, partitions=list(range(k)),
                          num_machines=machines)
    return Engine(graph, placement)


class TestPageRank:
    def test_total_rank_conserved(self, small_powerlaw):
        engine = engine_for(small_powerlaw)
        report = engine.run(PageRank(iterations=10), max_supersteps=12)
        assert sum(report.states.values()) == pytest.approx(
            small_powerlaw.num_vertices, rel=1e-6)

    def test_hub_ranks_highest_on_star(self, star):
        engine = engine_for(star)
        report = engine.run(PageRank(iterations=20), max_supersteps=25)
        ranks = report.states
        assert ranks[0] == max(ranks.values())

    def test_symmetric_graph_uniform_ranks(self):
        cycle = Graph([(i, (i + 1) % 6) for i in range(6)])
        engine = engine_for(cycle)
        report = engine.run(PageRank(iterations=30), max_supersteps=35)
        values = list(report.states.values())
        assert max(values) - min(values) < 1e-9

    def test_converges_after_iterations(self, triangle):
        engine = engine_for(triangle)
        report = engine.run(PageRank(iterations=5), max_supersteps=10)
        assert report.converged

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            PageRank(iterations=0)

    def test_is_stationary(self):
        assert PageRank().is_stationary()


class TestColoring:
    @pytest.mark.parametrize("fixture_name", [
        "triangle", "star", "two_triangles", "small_clustered"])
    def test_produces_proper_coloring(self, fixture_name, request):
        graph = request.getfixturevalue(fixture_name)
        engine = engine_for(graph)
        report = engine.run(GreedyColoring(max_iterations=30),
                            max_supersteps=32)
        colors = report.states
        conflicts = [e for e in graph.edges() if colors[e.u] == colors[e.v]]
        assert conflicts == []

    def test_triangle_needs_three_colors(self, triangle):
        engine = engine_for(triangle)
        report = engine.run(GreedyColoring(max_iterations=20),
                            max_supersteps=22)
        assert len(set(report.states.values())) == 3

    def test_star_needs_two_colors(self, star):
        engine = engine_for(star)
        report = engine.run(GreedyColoring(max_iterations=20),
                            max_supersteps=22)
        assert len(set(report.states.values())) == 2

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            GreedyColoring(max_iterations=0)


class TestComponents:
    def test_single_component(self, small_powerlaw):
        engine = engine_for(small_powerlaw)
        report = engine.run(ConnectedComponents(), max_supersteps=100)
        assert len(set(report.states.values())) == 1
        assert report.converged

    def test_two_components(self):
        graph = Graph([(0, 1), (1, 2), (10, 11)])
        engine = engine_for(graph)
        report = engine.run(ConnectedComponents(), max_supersteps=20)
        labels = report.states
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[10] == labels[11] == 10

    def test_labels_are_component_minima(self, two_triangles):
        engine = engine_for(two_triangles)
        report = engine.run(ConnectedComponents(), max_supersteps=20)
        assert set(report.states.values()) == {0}


class TestSSSP:
    def test_path_distances(self, path_graph):
        engine = engine_for(path_graph)
        report = engine.run(SingleSourceShortestPaths(source=0),
                            max_supersteps=20)
        assert [report.states[i] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_unreachable_infinite(self):
        graph = Graph([(0, 1), (5, 6)])
        engine = engine_for(graph)
        report = engine.run(SingleSourceShortestPaths(source=0),
                            max_supersteps=10)
        assert math.isinf(report.states[5])

    def test_triangle_distances(self, triangle):
        engine = engine_for(triangle)
        report = engine.run(SingleSourceShortestPaths(source=0),
                            max_supersteps=10)
        assert report.states[0] == 0
        assert report.states[1] == 1
        assert report.states[2] == 1


class TestCycleSearch:
    def test_finds_triangle(self, triangle):
        engine = engine_for(triangle)
        program = CycleSearch(cycle_length=3, seeds=[0], fanout=3, seed=1)
        report = engine.run(program, max_supersteps=5)
        assert sum(report.states.values()) >= 1

    def test_no_cycles_in_tree(self, star):
        engine = engine_for(star)
        program = CycleSearch(cycle_length=3, seeds=[0, 1], fanout=5, seed=1)
        report = engine.run(program, max_supersteps=6)
        assert sum(report.states.values()) == 0

    def test_finds_square(self):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        engine = engine_for(graph)
        program = CycleSearch(cycle_length=4, seeds=[0], fanout=4, seed=1)
        report = engine.run(program, max_supersteps=6)
        assert sum(report.states.values()) >= 1

    def test_wrong_length_not_found(self):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])  # only a 4-cycle
        engine = engine_for(graph)
        program = CycleSearch(cycle_length=3, seeds=[0, 1, 2, 3],
                              fanout=4, seed=1)
        report = engine.run(program, max_supersteps=6)
        assert sum(report.states.values()) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleSearch(cycle_length=2, seeds=[0])
        with pytest.raises(ValueError):
            CycleSearch(cycle_length=5, seeds=[0], fanout=0)
        with pytest.raises(ValueError):
            CycleSearch(cycle_length=5, seeds=[0], forward_probability=0.0)


class TestCliqueSearch:
    def test_finds_triangle_clique(self, triangle):
        engine = engine_for(triangle)
        program = CliqueSearch(clique_size=3, seeds=[0, 1, 2],
                               forward_probability=1.0, seed=1)
        report = engine.run(program, max_supersteps=5)
        assert sum(report.states.values()) >= 1

    def test_finds_k4(self):
        graph = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        engine = engine_for(graph)
        program = CliqueSearch(clique_size=4, seeds=[0, 1, 2, 3],
                               forward_probability=1.0, fanout=4, seed=1)
        report = engine.run(program, max_supersteps=6)
        assert sum(report.states.values()) >= 1

    def test_no_clique_in_star(self, star):
        engine = engine_for(star)
        program = CliqueSearch(clique_size=3, seeds=[0, 1],
                               forward_probability=1.0, seed=1)
        report = engine.run(program, max_supersteps=5)
        assert sum(report.states.values()) == 0

    def test_probabilistic_forwarding_bounds_messages(self, small_clustered):
        engine = engine_for(small_clustered)
        eager = CliqueSearch(clique_size=4, seeds=list(range(20)),
                             forward_probability=1.0, fanout=4, seed=1)
        lazy = CliqueSearch(clique_size=4, seeds=list(range(20)),
                            forward_probability=0.3, fanout=4, seed=1)
        eager_report = engine.run(eager, max_supersteps=6)
        lazy_report = engine.run(lazy, max_supersteps=6)
        assert lazy_report.messages_sent < eager_report.messages_sent

    def test_validation(self):
        with pytest.raises(ValueError):
            CliqueSearch(clique_size=1, seeds=[0])
        with pytest.raises(ValueError):
            CliqueSearch(clique_size=3, seeds=[0], forward_probability=1.5)
        with pytest.raises(ValueError):
            CliqueSearch(clique_size=3, seeds=[0], fanout=0)
