"""Daemon tests: protocol, multi-tenant parity, backpressure, durability.

Each test boots a real :class:`PartitionService` on an OS-assigned port
in a background thread and talks to it over TCP with the blocking
:class:`ServiceClient` — the same stack production traffic would use.
The headline contract: interleaved tenants are fully isolated, and a
tenant's stream produces **bit-identical** assignments to a local
``partition_stream`` run, even across a snapshot shutdown + restart.
"""

import random
import threading

import pytest

from _async_utils import wait_until
from repro.core.adwise import AdwisePartitioner
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.partitioning.hdrf import HDRFPartitioner
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import run_service
from repro.simtime import SimulatedClock


def _edges(n, vertices, seed):
    rng = random.Random(seed)
    out = [(rng.randrange(vertices), rng.randrange(vertices))
           for _ in range(n)]
    return [(u, v) for u, v in out if u != v]


EDGES = _edges(1200, 200, seed=17)


@pytest.fixture
def daemon(tmp_path):
    """A live daemon; yields (port, snapshot_dir, restart)."""
    snapshot_dir = str(tmp_path / "snapshots")
    threads = []

    def boot():
        ready = threading.Event()
        box = {}

        def on_ready(service):
            box["port"] = service.port
            ready.set()

        thread = threading.Thread(
            target=run_service,
            kwargs=dict(port=0, queue_depth=4, max_tenants=4,
                        snapshot_dir=snapshot_dir,
                        ready_callback=on_ready),
            daemon=True)
        thread.start()
        assert ready.wait(10), "daemon did not come up"
        threads.append(thread)
        return box["port"]

    port = boot()
    yield port, snapshot_dir, boot
    for thread in threads:
        if thread.is_alive():
            try:
                with ServiceClient(port=port) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass
        thread.join(10)
        wait_until(lambda: not thread.is_alive(),
                   message="daemon thread to exit after shutdown")


def _reference(algorithm_cls, partitions, edge_pairs, **knobs):
    partitioner = algorithm_cls(list(range(partitions)),
                                clock=SimulatedClock(), **knobs)
    stream = InMemoryEdgeStream([Edge(u, v) for u, v in edge_pairs])
    return partitioner.partition_stream(stream)


def _expected_triples(result):
    return sorted([e.u, e.v, p] for e, p in result.assignments.items())


class TestProtocol:
    def test_ping_and_unknown_op(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            assert client.ping()["pong"] is True
            with pytest.raises(ServiceError, match="unknown op"):
                client.request({"op": "frobnicate"})

    def test_unknown_tenant_and_duplicate_open(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceError, match="unknown tenant"):
                client.stats("ghost")
            client.open("t", algorithm="hdrf", partitions=4)
            with pytest.raises(ServiceError, match="already exists"):
                client.open("t", algorithm="hdrf", partitions=4)
            with pytest.raises(ServiceError):
                client.open("../escape", algorithm="hdrf", partitions=4)

    def test_max_tenants_enforced(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            for i in range(4):
                client.open(f"t{i}", algorithm="dbh", partitions=2)
            with pytest.raises(ServiceError, match="tenant limit"):
                client.open("overflow", algorithm="dbh", partitions=2)
            client.close_tenant("t0")
            client.open("overflow", algorithm="dbh", partitions=2)

    def test_bad_knobs_reported_not_fatal(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            with pytest.raises(ServiceError, match="bad knobs"):
                client.open("t", algorithm="hdrf", partitions=4,
                            bogus_knob=1)
            assert client.ping()["pong"] is True  # daemon survived


class TestMultiTenantParity:
    def test_interleaved_tenants_bit_identical(self, daemon):
        """Two algorithms, batches interleaved on one connection: each
        tenant's final result equals its local batch reference."""
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            client.open("alice", algorithm="adwise", partitions=8,
                        expected_edges=len(EDGES),
                        latency_preference_ms=50.0)
            client.open("bob", algorithm="hdrf", partitions=4)
            pending_a, pending_b = [], []
            for start in range(0, len(EDGES), 100):
                batch = EDGES[start:start + 100]
                pending_a.append(client.ingest_async("alice", batch))
                pending_b.append(client.ingest_async("bob", batch))
            client.drain(pending_a)
            client.drain(pending_b)
            alice = client.finalize("alice")
            bob = client.finalize("bob")

        ref_alice = _reference(AdwisePartitioner, 8, EDGES,
                               latency_preference_ms=50.0)
        ref_bob = _reference(HDRFPartitioner, 4, EDGES)
        assert alice["assignments"] == _expected_triples(ref_alice)
        assert bob["assignments"] == _expected_triples(ref_bob)
        assert alice["latency_ms"] == ref_alice.latency_ms
        assert alice["replication_degree"] == pytest.approx(
            ref_alice.replication_degree)

    def test_concurrent_connections(self, daemon):
        """One connection per tenant, driven from separate threads."""
        port, _, _ = daemon
        results = {}

        def drive(name, algorithm, partitions):
            with ServiceClient(port=port) as client:
                client.open(name, algorithm=algorithm,
                            partitions=partitions)
                for start in range(0, len(EDGES), 64):
                    client.ingest(name, EDGES[start:start + 64])
                results[name] = client.finalize(name)

        workers = [
            threading.Thread(target=drive, args=("w1", "hdrf", 4)),
            threading.Thread(target=drive, args=("w2", "dbh", 6)),
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(30)
        assert results["w1"]["assignments"] == _expected_triples(
            _reference(HDRFPartitioner, 4, EDGES))
        from repro.partitioning.dbh import DBHPartitioner
        assert results["w2"]["assignments"] == _expected_triples(
            _reference(DBHPartitioner, 6, EDGES))

    def test_query_and_audit(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            triples = client.ingest("t", EDGES[:50])
            u, v, p = triples[0]
            assert client.query_edge("t", u, v) == p
            assert p in client.query_vertex("t", u)
            audit = client.audit("t", limit=10)
            assert len(audit["decisions"]) == 10
            assert audit["decisions"][-1]["seq"] == 49
            stats = client.stats("t")
            assert stats["session"]["edges_ingested"] == 50
            assert stats["metrics"]["batches"] == 1
            assert stats["audit"]["recorded"] == 50

    def test_backpressure_queue_bound(self, daemon):
        """More pipelined batches than queue_depth=4: all are served
        (the bounded queue suspends the feeder, drops nothing)."""
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="dbh", partitions=4)
            pending = [client.ingest_async("t", EDGES[i:i + 10])
                       for i in range(0, 400, 10)]
            assignments = client.drain(pending)
            assert len(assignments) == len(EDGES[:400])
            stats = client.stats("t")
            assert stats["metrics"]["batches"] == 40
            assert stats["metrics"]["queue_high_water"] >= 1


class TestDurability:
    def test_shutdown_snapshot_restart_bit_identical(self, daemon):
        """Feed half a stream, shutdown (snapshots to disk), boot a new
        daemon over the same directory, feed the rest: the final result
        is bit-identical to an uninterrupted local batch run."""
        port, snapshot_dir, boot = daemon
        cut = 600
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="adwise", partitions=8,
                        expected_edges=len(EDGES),
                        latency_preference_ms=50.0)
            for start in range(0, cut, 64):
                client.ingest("t", EDGES[start:min(start + 64, cut)])
            report = client.shutdown()
        assert report["snapshots"] == ["t"]

        port2 = boot()
        with ServiceClient(port=port2) as client:
            tenants = client.tenants()
            assert [t["tenant"] for t in tenants] == ["t"]
            assert tenants[0]["edges_ingested"] == cut
            for start in range(cut, len(EDGES), 64):
                client.ingest("t", EDGES[start:start + 64])
            final = client.finalize("t")
            client.shutdown()

        reference = _reference(AdwisePartitioner, 8, EDGES,
                               latency_preference_ms=50.0)
        assert final["assignments"] == _expected_triples(reference)
        assert final["latency_ms"] == reference.latency_ms
        assert final["extras"] == reference.extras

    def test_snapshot_op_keeps_tenant_live(self, daemon):
        port, snapshot_dir, _ = daemon
        import os
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            client.ingest("t", EDGES[:100])
            response = client.snapshot("t")
            assert os.path.isfile(response["path"])
            client.ingest("t", EDGES[100:200])  # still live
            assert (client.stats("t")["session"]["edges_ingested"]
                    == 200)


class TestGarbageInput:
    """Every class of garbage must answer ``ok: false`` and leave the
    connection (and the daemon) fully serviceable."""

    @staticmethod
    def _exchange(port, raw_lines):
        """Send raw bytes, read one response per expected line."""
        import socket

        with socket.create_connection(("127.0.0.1", port),
                                      timeout=10) as sock:
            reader = sock.makefile("rb")
            sock.sendall(raw_lines)
            sock.sendall(b'{"op": "ping", "id": 99}\n')
            responses = []
            while True:
                import json
                response = json.loads(reader.readline())
                responses.append(response)
                if response.get("id") == 99:
                    return responses

    def test_invalid_json(self, daemon):
        port, _, _ = daemon
        responses = self._exchange(port, b"{nope nope\n")
        assert responses[0]["ok"] is False
        assert "bad request" in responses[0]["error"]
        assert responses[-1]["pong"] is True  # connection survived

    def test_binary_garbage(self, daemon):
        port, _, _ = daemon
        responses = self._exchange(port, b"\x00\xff\xfe\x9c\n")
        assert responses[0]["ok"] is False
        assert responses[-1]["pong"] is True

    def test_non_dict_payload(self, daemon):
        port, _, _ = daemon
        responses = self._exchange(port, b"[1, 2, 3]\n")
        assert responses[0]["ok"] is False
        assert "JSON object" in responses[0]["error"]
        assert responses[-1]["pong"] is True

    def test_unknown_op_keeps_connection(self, daemon):
        port, _, _ = daemon
        responses = self._exchange(port, b'{"op": "zap"}\n')
        assert responses[0]["ok"] is False
        assert "unknown op" in responses[0]["error"]
        assert responses[-1]["pong"] is True

    def test_oversized_line_discarded(self, daemon):
        """A line past max_line_bytes (default 1 MiB) is discarded with
        a diagnostic instead of buffered unboundedly."""
        port, _, _ = daemon
        huge = b'{"op": "ingest", "edges": [' + \
            b"[1,2]," * 300_000 + b"[1,2]]}\n"
        assert len(huge) > 1_048_576
        responses = self._exchange(port, huge)
        assert responses[0]["ok"] is False
        assert "exceeds" in responses[0]["error"]
        assert responses[-1]["pong"] is True

    def test_malformed_edges_and_seq(self, daemon):
        port, _, _ = daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            with pytest.raises(ServiceError):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": [["x", "y"]]})
            with pytest.raises(ServiceError):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": [[1, 2]], "seq": "later"})
            with pytest.raises(ServiceError):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": [[1, 2]], "seq": 0})
            with pytest.raises(ServiceError):
                client.request({"op": "open", "tenant": "u",
                                "knobs": "not-a-dict"})
            assert client.ping()["pong"] is True


class _ScriptedServer:
    """One-connection fake daemon replying with canned lines — for
    exercising the client's response bookkeeping."""

    def __init__(self, replies_per_line):
        import socket

        self._replies = list(replies_per_line)
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        reader = conn.makefile("rb")
        try:
            for reply in self._replies:
                if not reader.readline():
                    return
                conn.sendall(reply)
            reader.readline()  # linger until the client hangs up
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._listener.close()


class TestClientBookkeeping:
    """The `_wait_for` satellite: un-id'd responses raise instead of
    wedging the loop; stale responses are dropped, not accumulated."""

    def test_unidentified_response_raises(self):
        server = _ScriptedServer([b'{"ok": true, "pong": true}\n'])
        try:
            with ServiceClient(port=server.port, max_retries=0) as client:
                with pytest.raises(ServiceError,
                                   match="un-correlated"):
                    client.ping()
        finally:
            server.close()

    def test_stale_responses_dropped(self):
        """A reply for an id that is no longer pending (e.g. abandoned
        after a timeout) must not accumulate in ``_responses``."""
        server = _ScriptedServer([
            b'{"ok": true, "id": 999}\n'
            b'{"ok": true, "id": 998}\n'
            b'{"ok": true, "pong": true, "id": 0}\n'])
        try:
            with ServiceClient(port=server.port, max_retries=0) as client:
                assert client.ping()["pong"] is True
                assert client._responses == {}
                assert client._pending == {}
        finally:
            server.close()
