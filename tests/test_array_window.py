"""Differential tests: the array window must equal the object window exactly.

The struct-of-arrays :class:`ArrayEdgeWindow` (batched kernels, component
memos, free-list slots) is only admissible because it is *bit-identical*
to the dict-of-objects :class:`EdgeWindow` reference — same assignments
in the same order, same replication factor and imbalance, same simulated
latency and score-computation counts, same adaptive window-size trace,
same promotion counts.  These tests enforce that contract with
property-based random streams (duplicate edges included — window entries
are distinct items), a full configuration grid, and targeted unit checks
of the window API itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adwise import AdwisePartitioner
from repro.core.array_window import ArrayEdgeWindow
from repro.core.scoring import AdaptiveBalancer, AdwiseScoring
from repro.core.window import EdgeWindow
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.state import PartitionState
from repro.simtime import SimulatedClock

# ---------------------------------------------------------------------------
# Strategies: small vertex universe so duplicate edges and dense windows
# are common, which is exactly where entry ordering and memo invalidation
# can go wrong.
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(
        lambda t: t[0] != t[1]),
    min_size=1, max_size=90)

partition_counts = st.integers(2, 9)


def stream_of(pairs):
    return InMemoryEdgeStream([Edge(u, v) for u, v in pairs])


def run_three(pairs, k, **kwargs):
    """(legacy dict-state, object window on fast state, array window)."""
    results = []
    partitioners = []
    for fast, backend in ((False, "object"), (True, "object"),
                          (True, "array")):
        partitioner = AdwisePartitioner(range(k), fast=fast,
                                        window_backend=backend, **kwargs)
        partitioners.append(partitioner)
        results.append(partitioner.partition_stream(stream_of(pairs)))
    return partitioners, results


def window_trace(partitioner):
    """The adaptive controller's window-size evolution, decision by decision."""
    return [(event.assignments, event.window_before, event.window_after,
             event.decision, event.block_avg_score)
            for event in partitioner.controller.events]


def assert_identical(partitioners, results):
    reference = results[0]
    ref_trace = window_trace(partitioners[0])
    for partitioner, result in zip(partitioners[1:], results[1:]):
        # Assignment order matters: dict equality alone would hide a
        # different pop order that happens to reach the same mapping.
        assert (list(result.assignments.items())
                == list(reference.assignments.items()))
        assert result.replication_degree == reference.replication_degree
        assert result.imbalance == reference.imbalance
        assert result.latency_ms == reference.latency_ms
        assert result.score_computations == reference.score_computations
        assert result.extras == reference.extras  # incl. promotions, windows
        assert window_trace(partitioner) == ref_trace


# ---------------------------------------------------------------------------
# Property-based parity across the configuration grid
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=30)
@given(edge_lists, partition_counts)
def test_adaptive_lazy_parity(pairs, k):
    assert_identical(*run_three(pairs, k, latency_preference_ms=5.0))


@settings(deadline=None, max_examples=25)
@given(edge_lists, partition_counts, st.integers(1, 24))
def test_fixed_window_lazy_parity(pairs, k, window):
    assert_identical(*run_three(pairs, k, fixed_window=window))


@settings(deadline=None, max_examples=20)
@given(edge_lists, partition_counts, st.integers(1, 24))
def test_fixed_window_eager_parity(pairs, k, window):
    assert_identical(*run_three(pairs, k, fixed_window=window, lazy=False))


@settings(deadline=None, max_examples=15)
@given(edge_lists, partition_counts)
def test_adaptive_eager_parity(pairs, k):
    assert_identical(*run_three(pairs, k, latency_preference_ms=5.0,
                                lazy=False))


@settings(deadline=None, max_examples=15)
@given(edge_lists, partition_counts)
def test_no_clustering_parity(pairs, k):
    assert_identical(*run_three(pairs, k, latency_preference_ms=5.0,
                                use_clustering=False))


@settings(deadline=None, max_examples=15)
@given(edge_lists, partition_counts)
def test_unbounded_preference_parity(pairs, k):
    """No latency preference: the window grows as long as quality improves."""
    assert_identical(*run_three(pairs, k, latency_preference_ms=None,
                                max_window=32))


@settings(deadline=None, max_examples=15)
@given(edge_lists, partition_counts)
def test_hybrid_auto_backend_parity(pairs, k):
    """The hybrid auto backend (object → array migration mid-stream) must
    stay bit-identical to the pure object window."""
    doubled = [pair for pair in pairs for _ in (0, 1, 2)] * 3
    partitioners, results = [], []
    for fast, backend in ((True, "object"), (True, "auto")):
        partitioner = AdwisePartitioner(range(k), fast=fast,
                                        window_backend=backend,
                                        latency_preference_ms=None,
                                        max_window=64)
        partitioners.append(partitioner)
        results.append(partitioner.partition_stream(stream_of(doubled)))
    assert_identical(partitioners, results)


@settings(deadline=None, max_examples=15)
@given(edge_lists, partition_counts)
def test_duplicate_heavy_stream_parity(pairs, k):
    """Every edge twice back to back: duplicate window entries everywhere."""
    doubled = [pair for pair in pairs for _ in (0, 1)]
    assert_identical(*run_three(doubled, k, fixed_window=8))


@settings(deadline=None, max_examples=10)
@given(edge_lists, partition_counts)
def test_tiny_candidate_cap_parity(pairs, k):
    """A tiny candidate cap exercises rule-2 fallback promotion ordering."""
    assert_identical(*run_three(pairs, k, fixed_window=12, max_candidates=2))


@settings(deadline=None, max_examples=20)
@given(edge_lists, partition_counts)
def test_score_batch_matches_score_all(pairs, k):
    """The batched kernel row-for-row equals the single-edge kernel."""
    import numpy as np

    state = FastPartitionState(range(k))
    scoring = AdwiseScoring(state, balancer=AdaptiveBalancer(len(pairs)))
    nbr_pool = sorted({v for pair in pairs for v in pair})
    for i, (u, v) in enumerate(pairs):
        edge = Edge(u, v).canonical()
        state.observe_degrees(edge)
        state.assign(edge, (u + i) % k)
        scoring.after_assignment()
    edges = [Edge(u, v).canonical() for u, v in pairs]
    us = [e.u for e in edges]
    vs = [e.v for e in edges]
    nbr_concat = []
    counts = []
    for i in range(len(edges)):
        nbrs = nbr_pool[:i % 4]
        counts.append(len(nbrs))
        nbr_concat.extend(nbrs)
    batched = scoring.score_batch(us, vs, nbr_concat,
                                  np.asarray(counts, dtype=np.int64))
    for i, edge in enumerate(edges):
        nbrs = nbr_pool[:i % 4]
        assert list(batched[i]) == list(scoring.score_all(edge, nbrs))


# ---------------------------------------------------------------------------
# Capacity management: growth and compaction under adaptive resizing
# ---------------------------------------------------------------------------

def test_grow_then_shrink_compacts_and_stays_identical():
    """A stream long enough to grow past the initial capacity, with a
    latency preference that later forces shrinking back to w=1."""
    pairs = [(i % 37, (i * 7 + 1) % 41 + 37) for i in range(600)]
    partitioners, results = run_three(pairs, 4, latency_preference_ms=3.0,
                                      max_window=256)
    assert_identical(partitioners, results)
    window = partitioners[2].window
    assert isinstance(window, ArrayEdgeWindow)
    # The controller shrank near the end; compaction keeps capacity at
    # most a small multiple of the final occupancy (bounded by the
    # compaction floor).
    assert window._capacity <= max(64, 4 * max(1, len(window)))


def test_forced_growth_from_small_initial_capacity():
    state = FastPartitionState([0, 1, 2])
    scoring = AdwiseScoring(state, balancer=None)
    window = ArrayEdgeWindow(scoring, initial_capacity=1)
    edges = [Edge(i, i + 100) for i in range(200)]
    ids = window.add_block(edges, observe=state.observe_degrees)
    assert len(ids) == 200
    assert len(window) == 200
    assert window.edges() == edges  # insertion order preserved across growth
    popped = [window.pop_best()[0] for _ in range(200)]
    assert sorted(e.u for e in popped) == sorted(e.u for e in edges)
    assert len(window) == 0


# ---------------------------------------------------------------------------
# Window API unit tests (mirror of the object window's contract)
# ---------------------------------------------------------------------------

def make_array_window(partitions=(0, 1), lazy=True, epsilon=0.1,
                      max_candidates=64):
    state = FastPartitionState(list(partitions))
    scoring = AdwiseScoring(state, balancer=None)
    return ArrayEdgeWindow(scoring, lazy=lazy, epsilon=epsilon,
                           max_candidates=max_candidates), state


class TestArrayWindowBasics:
    def test_empty_window_pop_raises(self):
        window, _ = make_array_window()
        with pytest.raises(IndexError):
            window.pop_best()

    def test_requires_fast_state(self):
        scoring = AdwiseScoring(PartitionState([0, 1]), balancer=None)
        with pytest.raises(ValueError):
            ArrayEdgeWindow(scoring)

    def test_invalid_epsilon(self):
        state = FastPartitionState([0])
        with pytest.raises(ValueError):
            ArrayEdgeWindow(AdwiseScoring(state, balancer=None), epsilon=2.0)

    def test_invalid_max_candidates(self):
        state = FastPartitionState([0])
        with pytest.raises(ValueError):
            ArrayEdgeWindow(AdwiseScoring(state, balancer=None),
                            max_candidates=0)

    def test_duplicate_edges_kept_as_distinct_entries(self):
        window, _ = make_array_window()
        window.add(Edge(1, 2))
        window.add(Edge(1, 2))
        assert len(window) == 2

    def test_pop_removes_entry(self):
        window, _ = make_array_window()
        window.add(Edge(1, 2))
        edge, partition, _ = window.pop_best()
        assert edge == Edge(1, 2)
        assert partition in (0, 1)
        assert len(window) == 0

    def test_threshold_matches_object_window(self):
        array_window, astate = make_array_window(epsilon=0.25)
        object_window = EdgeWindow(
            AdwiseScoring(PartitionState([0, 1]), balancer=None),
            epsilon=0.25)
        assert array_window.threshold == object_window.threshold == 0.25
        for win, state in ((array_window, astate),):
            state.observe_degrees(Edge(1, 2))
            win.add(Edge(1, 2))
        assert array_window.threshold == pytest.approx(
            array_window._score_sum / 1 + 0.25)

    def test_neighborhood_matches_object_window(self):
        array_window, astate = make_array_window()
        legacy_state = PartitionState([0, 1])
        object_window = EdgeWindow(AdwiseScoring(legacy_state, balancer=None))
        for edge in (Edge(1, 2), Edge(2, 3), Edge(8, 9), Edge(1, 3)):
            astate.observe_degrees(edge)
            legacy_state.observe_degrees(edge)
            array_window.add(edge)
            object_window.add(edge)
        for probe in (Edge(1, 2), Edge(2, 3), Edge(8, 9), Edge(4, 5)):
            assert (array_window.neighborhood(probe)
                    == object_window.neighborhood(probe))

    def test_max_candidates_cap(self):
        window, state = make_array_window(lazy=True, max_candidates=2)
        state.observe_degrees(Edge(50, 51))
        state.assign(Edge(50, 51), 0)
        for i in range(5):
            window.add(Edge(50, 200 + i))
        assert window.candidate_count <= 2

    def test_promotions_counted(self):
        window, state = make_array_window(lazy=True)
        for i in range(8):
            state.observe_degrees(Edge(i, i + 100))
            window.add(Edge(i, i + 100))
        assert window.candidate_count == 0
        window.pop_best()  # rule-2 rescue must promote
        assert window.promotions >= 1


class TestPopBestFallbackFix:
    """Satellite: pop_best must not default to partitions[0] silently."""

    def test_best_initialised_from_first_candidate(self):
        # Partition ids deliberately not starting at 0: a sentinel
        # fallback to partitions[0] would be observable as partition 7.
        state = FastPartitionState([7, 3])
        state.observe_degrees(Edge(1, 2))
        state.assign(Edge(1, 2), 3)
        window, wstate = make_array_window(partitions=(7, 3))
        wstate.observe_degrees(Edge(1, 2))
        wstate.assign(Edge(1, 2), 3)
        wstate.observe_degrees(Edge(1, 5))
        window.add(Edge(1, 5))
        edge, partition, score = window.pop_best()
        assert partition == 3  # follows the replica, not the sentinel

    def test_object_window_same_fix(self):
        legacy = PartitionState([7, 3])
        legacy.observe_degrees(Edge(1, 2))
        legacy.assign(Edge(1, 2), 3)
        window = EdgeWindow(AdwiseScoring(legacy, balancer=None))
        legacy.observe_degrees(Edge(1, 5))
        window.add(Edge(1, 5))
        edge, partition, score = window.pop_best()
        assert partition == 3


class TestAdwiseWiring:
    def test_auto_backend_picks_array_for_large_fixed_window(self):
        partitioner = AdwisePartitioner(range(4), fast=True, fixed_window=64)
        partitioner.partition_stream(stream_of([(1, 2), (2, 3)]))
        assert isinstance(partitioner.window, ArrayEdgeWindow)

    def test_auto_backend_keeps_object_for_small_fixed_window(self):
        partitioner = AdwisePartitioner(range(4), fast=True, fixed_window=4)
        partitioner.partition_stream(stream_of([(1, 2), (2, 3)]))
        assert isinstance(partitioner.window, EdgeWindow)

    def test_auto_backend_picks_object_on_legacy_state(self):
        partitioner = AdwisePartitioner(range(4))
        partitioner.partition_stream(stream_of([(1, 2), (2, 3)]))
        assert isinstance(partitioner.window, EdgeWindow)

    def test_hybrid_migrates_when_window_grows(self):
        """Unbounded latency preference grows w past the threshold; the
        hybrid must hand over to the array window mid-stream."""
        pairs = [(i % 31, (i * 7 + 1) % 37 + 31) for i in range(400)]
        partitioner = AdwisePartitioner(range(4), fast=True,
                                        latency_preference_ms=None,
                                        max_window=128)
        result = partitioner.partition_stream(stream_of(pairs))
        assert result.extras["max_window"] >= 32
        assert isinstance(partitioner.window, ArrayEdgeWindow)

    def test_hybrid_stays_object_when_window_stays_small(self):
        pairs = [(i % 13, (i * 5 + 2) % 13 + 13) for i in range(60)]
        partitioner = AdwisePartitioner(range(4), fast=True,
                                        latency_preference_ms=0.0)
        partitioner.partition_stream(stream_of(pairs))
        assert isinstance(partitioner.window, EdgeWindow)

    def test_array_backend_requires_fast_state(self):
        partitioner = AdwisePartitioner(range(4), window_backend="array")
        with pytest.raises(ValueError):
            partitioner.partition_stream(stream_of([(1, 2)]))

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            AdwisePartitioner(range(4), window_backend="simd")

    def test_promotions_surface_in_extras(self):
        pairs = [(i % 9, (i * 3 + 1) % 9 + 9) for i in range(60)]
        for fast in (False, True):
            partitioner = AdwisePartitioner(range(4), fixed_window=8,
                                            fast=fast)
            result = partitioner.partition_stream(stream_of(pairs))
            assert "promotions" in result.extras
            assert result.extras["promotions"] == float(
                partitioner.window.promotions)

    def test_clock_parity_between_backends(self):
        pairs = [(i % 11, (i * 5 + 2) % 11 + 11) for i in range(80)]
        clocks = []
        for backend in ("object", "array"):
            clock = SimulatedClock()
            AdwisePartitioner(range(4), fixed_window=16, fast=True,
                              window_backend=backend,
                              clock=clock).partition_stream(stream_of(pairs))
            clocks.append((clock.score_computations, clock.assignments,
                           clock.now()))
        assert clocks[0] == clocks[1]
