"""Unit tests for ADWISE's scoring function (Eq. 3-7)."""

import pytest

from repro.graph.graph import Edge
from repro.core.scoring import (
    LAMBDA_MAX,
    LAMBDA_MIN,
    AdaptiveBalancer,
    AdwiseScoring,
)
from repro.partitioning.state import PartitionState
from repro.simtime import SimulatedClock


@pytest.fixture
def state():
    return PartitionState([0, 1])


@pytest.fixture
def scoring(state):
    return AdwiseScoring(state, balancer=None, fixed_lambda=1.0)


class TestAdaptiveBalancer:
    def test_tolerance_linear_decay(self):
        assert AdaptiveBalancer.tolerance(0.0) == 1.0
        assert AdaptiveBalancer.tolerance(0.5) == 0.5
        assert AdaptiveBalancer.tolerance(1.0) == 0.0
        assert AdaptiveBalancer.tolerance(1.5) == 0.0

    def test_lambda_grows_when_imbalance_exceeds_tolerance(self):
        balancer = AdaptiveBalancer(total_edges=100, initial=1.0)
        # At the end of the stream (alpha=1) tolerance is 0: any imbalance
        # raises lambda.
        new = balancer.update(imbalance=0.5, assigned_edges=100)
        assert new == pytest.approx(1.5)

    def test_lambda_shrinks_when_balanced_early(self):
        balancer = AdaptiveBalancer(total_edges=100, initial=1.0)
        # Early in the stream tolerance is ~1: perfect balance lowers lambda.
        new = balancer.update(imbalance=0.0, assigned_edges=1)
        assert new < 1.0

    def test_lambda_clamped_above(self):
        balancer = AdaptiveBalancer(total_edges=10, initial=4.9)
        for _ in range(10):
            balancer.update(imbalance=1.0, assigned_edges=10)
        assert balancer.value == LAMBDA_MAX

    def test_lambda_clamped_below(self):
        balancer = AdaptiveBalancer(total_edges=1000, initial=0.5)
        for _ in range(10):
            balancer.update(imbalance=0.0, assigned_edges=1)
        assert balancer.value == LAMBDA_MIN

    def test_initial_outside_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBalancer(10, initial=10.0)

    def test_zero_total_edges_uses_full_progress(self):
        balancer = AdaptiveBalancer(total_edges=0, initial=1.0)
        balancer.update(imbalance=0.3, assigned_edges=0)
        assert balancer.value == pytest.approx(1.3)


class TestBalanceScore:
    def test_empty_partitions_equal(self, scoring):
        assert scoring.balance_score(0) == scoring.balance_score(1)

    def test_lighter_partition_scores_higher(self, state, scoring):
        state.assign(Edge(1, 2), 0)
        assert scoring.balance_score(1) > scoring.balance_score(0)

    def test_bounded_zero_one(self, state, scoring):
        for i in range(10):
            state.assign(Edge(i, i + 100), 0)
        assert 0.0 <= scoring.balance_score(0) <= 1.0
        assert 0.0 <= scoring.balance_score(1) <= 1.0


class TestReplicationScore:
    def test_zero_for_unknown_vertices(self, scoring):
        assert scoring.replication_score(Edge(5, 6), 0) == 0.0

    def test_replica_rewarded(self, state, scoring):
        state.observe_degrees(Edge(5, 6))
        state.assign(Edge(5, 6), 0)
        assert scoring.replication_score(Edge(5, 7), 0) > 0.0
        assert scoring.replication_score(Edge(5, 7), 1) == 0.0

    def test_both_endpoints_double_reward(self, state, scoring):
        state.observe_degrees(Edge(5, 6))
        state.assign(Edge(5, 6), 0)
        both = scoring.replication_score(Edge(5, 6), 0)
        one = scoring.replication_score(Edge(5, 7), 0)
        assert both > one

    def test_low_degree_vertex_scores_higher_than_high_degree(self, state):
        """Eq. 5: (2 − Ψ) penalises high-degree (easily re-cut) vertices."""
        scoring = AdwiseScoring(state, balancer=None)
        # Vertex 1: degree 6 (high); vertex 50: degree 1 (low).
        for other in range(2, 8):
            state.observe_degrees(Edge(1, other))
        state.observe_degrees(Edge(50, 51))
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(50, 51), 0)
        high = scoring.replication_score(Edge(1, 90), 0)
        low = scoring.replication_score(Edge(50, 90), 0)
        assert low > high

    def test_psi_normalisation(self, state, scoring):
        for other in range(2, 6):
            state.observe_degrees(Edge(1, other))
        # deg(1) = 4 = maxDegree -> psi = 0.5
        assert scoring.psi(1) == pytest.approx(0.5)


class TestClusteringScore:
    def test_empty_neighborhood_zero(self, scoring):
        assert scoring.clustering_score(Edge(1, 2), 0, ()) == 0.0

    def test_fraction_of_replicated_neighbors(self, state, scoring):
        state.observe_degrees(Edge(10, 11))
        state.assign(Edge(10, 11), 0)
        # Neighborhood {10, 11, 99}: two of three are on partition 0.
        cs = scoring.clustering_score(Edge(1, 2), 0, [10, 11, 99])
        assert cs == pytest.approx(2 / 3)

    def test_paper_figure6_example(self):
        """Fig. 6: u embedded in a cluster on p1 beats a lone neighbor on p2."""
        state = PartitionState([1, 2])
        scoring = AdwiseScoring(state, balancer=None)
        # Neighbors u1,u2,u3 on partition 1; u4 on partition 2.
        for vertex, partition in [(11, 1), (12, 1), (13, 1), (14, 2)]:
            state.observe_degrees(Edge(vertex, 100 + vertex))
            state.assign(Edge(vertex, 100 + vertex), partition)
        neighborhood = [11, 12, 13, 14]
        cs_p1 = scoring.clustering_score(Edge(1, 2), 1, neighborhood)
        cs_p2 = scoring.clustering_score(Edge(1, 2), 2, neighborhood)
        assert cs_p1 == pytest.approx(3 / 4)
        assert cs_p2 == pytest.approx(1 / 4)
        assert cs_p1 > cs_p2

    def test_disabled_clustering_excluded_from_total(self, state):
        with_cs = AdwiseScoring(state, balancer=None, use_clustering=True)
        without_cs = AdwiseScoring(state, balancer=None, use_clustering=False)
        state.observe_degrees(Edge(10, 11))
        state.assign(Edge(10, 11), 0)
        total_with = with_cs.score(Edge(1, 2), 0, [10])
        total_without = without_cs.score(Edge(1, 2), 0, [10])
        assert total_with > total_without


class TestTotalScore:
    def test_charges_clock(self, state):
        clock = SimulatedClock()
        scoring = AdwiseScoring(state, balancer=None, clock=clock)
        scoring.score(Edge(1, 2), 0, ())
        assert clock.score_computations == 1

    def test_lambda_weighting(self, state):
        low = AdwiseScoring(state, balancer=None, fixed_lambda=0.4)
        high = AdwiseScoring(state, balancer=None, fixed_lambda=5.0)
        state.assign(Edge(1, 2), 0)
        # Partition 1 is lighter; high lambda amplifies its advantage.
        gap_low = (low.score(Edge(8, 9), 1, ())
                   - low.score(Edge(8, 9), 0, ()))
        gap_high = (high.score(Edge(8, 9), 1, ())
                    - high.score(Edge(8, 9), 0, ()))
        assert gap_high > gap_low

    def test_after_assignment_adapts_lambda(self, state):
        balancer = AdaptiveBalancer(total_edges=2, initial=1.0)
        scoring = AdwiseScoring(state, balancer=balancer)
        state.assign(Edge(1, 2), 0)  # imbalance 1.0 at alpha 0.5
        scoring.after_assignment()
        assert balancer.value != 1.0

    def test_current_lambda_sources(self, state):
        fixed = AdwiseScoring(state, balancer=None, fixed_lambda=2.5)
        assert fixed.current_lambda == 2.5
        balancer = AdaptiveBalancer(total_edges=10, initial=1.5)
        adaptive = AdwiseScoring(state, balancer=balancer)
        assert adaptive.current_lambda == 1.5
