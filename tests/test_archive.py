"""Tests for experiment archiving and diffing."""

import math

import pytest

from repro.bench.archive import (
    diff_archives,
    load_archive,
    save_archive,
)
from repro.bench.harness import LatencyRow


def make_row(label, part=10.0, repl=2.0, imb=0.01, blocks=(5.0,)):
    return LatencyRow(label=label, partitioning_ms=part,
                      block_ms=list(blocks), replication_degree=repl,
                      imbalance=imb, score_computations=100)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        rows = [make_row("HDRF"), make_row("ADWISE", part=40.0, repl=1.5)]
        path = tmp_path / "exp.json"
        save_archive(path, "fig7a", rows, metadata={"seed": 7})
        experiment, loaded, metadata = load_archive(path)
        assert experiment == "fig7a"
        assert metadata == {"seed": 7}
        assert [r.label for r in loaded] == ["HDRF", "ADWISE"]
        assert loaded[1].partitioning_ms == 40.0
        assert loaded[0].block_ms == [5.0]

    def test_version_check(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text('{"format_version": 99, "rows": []}')
        with pytest.raises(ValueError):
            load_archive(path)


class TestDiff:
    def test_no_changes_below_threshold(self):
        a = [make_row("X", part=100.0)]
        b = [make_row("X", part=101.0)]  # 1% < 2% threshold
        assert diff_archives(a, b) == []

    def test_detects_regression(self):
        a = [make_row("X", repl=2.0)]
        b = [make_row("X", repl=2.5)]
        deltas = diff_archives(a, b)
        assert len(deltas) == 1
        delta = deltas[0]
        assert delta.metric == "replication_degree"
        assert delta.relative == pytest.approx(0.25)

    def test_detects_added_and_removed_configs(self):
        a = [make_row("old")]
        b = [make_row("new")]
        deltas = diff_archives(a, b)
        metrics = {(d.label, d.metric) for d in deltas}
        assert ("old", "presence") in metrics
        assert ("new", "presence") in metrics

    def test_presence_delta_uses_nan(self):
        deltas = diff_archives([make_row("gone")], [])
        assert math.isnan(deltas[0].after)

    def test_custom_threshold(self):
        a = [make_row("X", part=100.0)]
        b = [make_row("X", part=104.0)]
        assert diff_archives(a, b, threshold=0.05) == []
        assert len(diff_archives(a, b, threshold=0.01)) == 1
