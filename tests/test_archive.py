"""Tests for experiment archiving and diffing."""

import math

import pytest

from repro.bench.archive import (
    diff_archives,
    load_archive,
    save_archive,
)
from repro.bench.harness import LatencyRow


def make_row(label, part=10.0, repl=2.0, imb=0.01, blocks=(5.0,)):
    return LatencyRow(label=label, partitioning_ms=part,
                      block_ms=list(blocks), replication_degree=repl,
                      imbalance=imb, score_computations=100)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        rows = [make_row("HDRF"), make_row("ADWISE", part=40.0, repl=1.5)]
        path = tmp_path / "exp.json"
        save_archive(path, "fig7a", rows, metadata={"seed": 7})
        experiment, loaded, metadata = load_archive(path)
        assert experiment == "fig7a"
        assert metadata == {"seed": 7}
        assert [r.label for r in loaded] == ["HDRF", "ADWISE"]
        assert loaded[1].partitioning_ms == 40.0
        assert loaded[0].block_ms == [5.0]

    def test_version_check(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text('{"format_version": 99, "rows": []}')
        with pytest.raises(ValueError):
            load_archive(path)

    def test_measured_wall_round_trips(self, tmp_path):
        row = make_row("ADWISE")
        row.block_wall_ms = [3.5, 3.7]
        path = tmp_path / "exp.json"
        save_archive(path, "calib", [row])
        _, loaded, _ = load_archive(path)
        assert loaded[0].block_wall_ms == [3.5, 3.7]
        assert loaded[0].total_wall_ms == pytest.approx(7.2)

    def test_loads_archives_without_wall_field(self, tmp_path):
        """Version-1 archives written before block_wall_ms existed."""
        import json
        payload = {
            "format_version": 1, "experiment": "old", "metadata": {},
            "rows": [{"label": "HDRF", "partitioning_ms": 1.0,
                      "block_ms": [2.0], "replication_degree": 2.0,
                      "imbalance": 0.0, "score_computations": 5}],
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        _, loaded, _ = load_archive(path)
        assert loaded[0].block_wall_ms == []


class TestDiff:
    def test_no_changes_below_threshold(self):
        a = [make_row("X", part=100.0)]
        b = [make_row("X", part=101.0)]  # 1% < 2% threshold
        assert diff_archives(a, b) == []

    def test_detects_regression(self):
        a = [make_row("X", repl=2.0)]
        b = [make_row("X", repl=2.5)]
        deltas = diff_archives(a, b)
        assert len(deltas) == 1
        delta = deltas[0]
        assert delta.metric == "replication_degree"
        assert delta.relative == pytest.approx(0.25)

    def test_detects_added_and_removed_configs(self):
        a = [make_row("old")]
        b = [make_row("new")]
        deltas = diff_archives(a, b)
        metrics = {(d.label, d.metric) for d in deltas}
        assert ("old", "presence") in metrics
        assert ("new", "presence") in metrics

    def test_presence_delta_uses_nan(self):
        deltas = diff_archives([make_row("gone")], [])
        assert math.isnan(deltas[0].after)

    def test_custom_threshold(self):
        a = [make_row("X", part=100.0)]
        b = [make_row("X", part=104.0)]
        assert diff_archives(a, b, threshold=0.05) == []
        assert len(diff_archives(a, b, threshold=0.01)) == 1
