"""Tests for the restreaming extension."""

import pytest

from repro.graph.stream import shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.restream import RestreamingDriver


def hdrf_factory(parts, clock):
    return HDRFPartitioner(parts, clock=clock)


def adwise_factory(parts, clock):
    return AdwisePartitioner(parts, clock=clock, fixed_window=8)


class TestRestreamingDriver:
    def test_single_pass_equals_plain_streaming(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        driver = RestreamingDriver(hdrf_factory, range(4), passes=1)
        restreamed = driver.run(stream)
        plain = HDRFPartitioner(range(4)).partition_stream(stream)
        assert restreamed.assignments == plain.assignments

    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            RestreamingDriver(hdrf_factory, range(4), passes=0)

    def test_latency_accumulates_over_passes(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        one = RestreamingDriver(hdrf_factory, range(4), passes=1).run(stream)
        three = RestreamingDriver(hdrf_factory, range(4), passes=3).run(stream)
        assert three.latency_ms == pytest.approx(one.latency_ms * 3, rel=0.05)
        assert three.extras["passes"] == 3.0

    def test_second_pass_not_worse(self, small_powerlaw):
        """Exact degree knowledge must not degrade degree-aware scoring."""
        stream = shuffled(small_powerlaw.edges(), seed=3)
        single = RestreamingDriver(hdrf_factory, range(8), passes=1).run(stream)
        double = RestreamingDriver(hdrf_factory, range(8), passes=2).run(stream)
        assert (double.replication_degree
                <= single.replication_degree * 1.05)

    def test_works_with_adwise(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        result = RestreamingDriver(adwise_factory, range(4), passes=2).run(stream)
        assert result.state.assigned_edges == len(stream)
        assert result.replication_degree >= 1.0

    def test_degree_table_carried_between_passes(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        captured = []

        def spy_factory(parts, clock):
            partitioner = HDRFPartitioner(parts, clock=clock)
            captured.append(partitioner)
            return partitioner

        RestreamingDriver(spy_factory, range(4), passes=2).run(stream)
        first, second = captured
        # The second pass started with the first pass's full degree table.
        assert second.state.max_degree >= first.state.max_degree
        some_vertex = next(iter(first.state.degree))
        # First-pass final degree was visible to the second pass from the
        # start; after the second pass observed the stream again, its
        # table shows exactly double counts.
        assert (second.state.degree[some_vertex]
                == 2 * first.state.degree[some_vertex])
