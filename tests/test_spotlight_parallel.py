"""Tests for spotlight spreads and the parallel loading model."""

import pytest

from repro.graph.stream import shuffled
from repro.core.spotlight import spotlight_spreads
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.parallel import ParallelLoader


class TestSpotlightSpreads:
    def test_disjoint_when_spread_is_k_over_z(self):
        spreads = spotlight_spreads(list(range(32)), 8, 4)
        assert len(spreads) == 8
        flat = [p for s in spreads for p in s]
        assert sorted(flat) == list(range(32))  # exact disjoint cover

    def test_full_spread_gives_all_partitions(self):
        spreads = spotlight_spreads(list(range(8)), 4, 8)
        assert all(sorted(s) == list(range(8)) for s in spreads)

    def test_intermediate_spread_covers_all(self):
        spreads = spotlight_spreads(list(range(32)), 8, 8)
        covered = {p for s in spreads for p in s}
        assert covered == set(range(32))

    def test_each_instance_gets_spread_partitions(self):
        spreads = spotlight_spreads(list(range(32)), 8, 16)
        assert all(len(set(s)) == 16 for s in spreads)

    def test_spread_too_small_to_cover_rejected(self):
        with pytest.raises(ValueError):
            spotlight_spreads(list(range(32)), 4, 4)

    def test_spread_bounds_validated(self):
        with pytest.raises(ValueError):
            spotlight_spreads(list(range(8)), 2, 0)
        with pytest.raises(ValueError):
            spotlight_spreads(list(range(8)), 2, 9)

    def test_no_partitions_rejected(self):
        with pytest.raises(ValueError):
            spotlight_spreads([], 2, 1)

    def test_custom_partition_ids(self):
        spreads = spotlight_spreads([10, 20, 30, 40], 2, 2)
        assert spreads == [[10, 20], [30, 40]]

    def test_more_instances_than_partitions(self):
        """z > k: instances share spotlights but still cover every
        partition."""
        spreads = spotlight_spreads(list(range(4)), 8, 1)
        assert len(spreads) == 8
        assert {p for s in spreads for p in s} == set(range(4))
        assert all(len(s) == 1 for s in spreads)

    def test_more_instances_than_partitions_wider_spread(self):
        spreads = spotlight_spreads(list(range(3)), 5, 2)
        assert {p for s in spreads for p in s} == set(range(3))
        # Wrap-around keeps every spread at the requested width.
        assert all(len(set(s)) == 2 for s in spreads)

    def test_single_instance_spread_smaller_than_k_rejected(self):
        """One instance with spread < k cannot cover all partitions."""
        with pytest.raises(ValueError):
            spotlight_spreads(list(range(8)), 1, 4)

    def test_spread_one_instance_per_partition(self):
        spreads = spotlight_spreads(list(range(4)), 4, 1)
        assert spreads == [[0], [1], [2], [3]]


class TestParallelLoader:
    def _loader(self, factory, spread=None, k=8, z=4):
        return ParallelLoader(factory, partitions=list(range(k)),
                              num_instances=z, spread=spread)

    def test_runs_all_instances(self, small_powerlaw):
        loader = self._loader(
            lambda parts, clock: HDRFPartitioner(parts, clock=clock))
        result = loader.run(shuffled(small_powerlaw.edges(), seed=3))
        assert result.num_instances == 4
        assert len(result.instance_results) == 4

    def test_all_edges_assigned_once(self, small_powerlaw):
        loader = self._loader(
            lambda parts, clock: HDRFPartitioner(parts, clock=clock))
        stream = shuffled(small_powerlaw.edges(), seed=3)
        result = loader.run(stream)
        assert sum(result.partition_sizes.values()) == len(stream)

    def test_default_spread_is_k_over_z(self, small_powerlaw):
        loader = self._loader(
            lambda parts, clock: HDRFPartitioner(parts, clock=clock))
        assert loader.spread == 2

    def test_indivisible_default_spread_rejected(self):
        with pytest.raises(ValueError):
            ParallelLoader(
                lambda parts, clock: HDRFPartitioner(parts, clock=clock),
                partitions=list(range(7)), num_instances=2)

    def test_latency_is_max_of_instances(self, small_powerlaw):
        loader = self._loader(
            lambda parts, clock: HDRFPartitioner(parts, clock=clock))
        result = loader.run(shuffled(small_powerlaw.edges(), seed=3))
        per_instance = [r.latency_ms for r in result.instance_results]
        assert result.latency_ms == max(per_instance)

    def test_merged_assignments_partition_validity(self, small_powerlaw):
        loader = self._loader(
            lambda parts, clock: HashPartitioner(parts, clock=clock))
        result = loader.run(shuffled(small_powerlaw.edges(), seed=3))
        assert set(result.assignments.values()) <= set(range(8))

    def test_empty_chunks_when_instances_outnumber_edges(self):
        """z instances over fewer than z edges: tail chunks are empty and
        the merge still accounts for every edge (both backends)."""
        from repro.graph.graph import Edge
        from repro.graph.stream import InMemoryEdgeStream
        from repro.partitioning.parallel import PartitionerSpec

        edges = [Edge(0, 1), Edge(1, 2)]
        for backend in ("simulated", "process"):
            loader = ParallelLoader(
                PartitionerSpec("hdrf"), partitions=list(range(8)),
                num_instances=8, backend=backend)
            result = loader.run(InMemoryEdgeStream(edges))
            assert sum(result.partition_sizes.values()) == 2
            assert len(result.instance_results) == 8
            empty = [r for r in result.instance_results
                     if r.state.assigned_edges == 0]
            assert len(empty) == 6

    def test_empty_stream_all_chunks_empty(self):
        from repro.graph.stream import InMemoryEdgeStream
        from repro.partitioning.parallel import PartitionerSpec

        loader = ParallelLoader(PartitionerSpec("hdrf"),
                                partitions=list(range(4)), num_instances=4)
        result = loader.run(InMemoryEdgeStream([]))
        assert result.replica_sets == {}
        assert sum(result.partition_sizes.values()) == 0
        assert result.latency_ms == 0.0
        assert result.replication_degree == 0.0


class TestSpotlightEffect:
    """The headline Fig. 8 property: smaller spread -> lower replication.

    The effect requires the conditions of the paper's setup: chunks carry
    stream locality (adjacency-ordered edge files) and vertices have enough
    edges per chunk that a large spread can spray them.  The baselines in
    Fig. 8 are DBH, HDRF, and ADWISE.
    """

    @pytest.mark.parametrize("factory", [
        lambda parts, clock: DBHPartitioner(parts, clock=clock),
        lambda parts, clock: HDRFPartitioner(parts, clock=clock),
        lambda parts, clock: AdwisePartitioner(parts, clock=clock,
                                               fixed_window=8),
    ], ids=["dbh", "hdrf", "adwise"])
    def test_small_spread_beats_max_spread(self, factory, dense_community):
        from repro.graph.stream import InMemoryEdgeStream

        def run(spread):
            loader = ParallelLoader(factory, partitions=list(range(16)),
                                    num_instances=4, spread=spread)
            return loader.run(InMemoryEdgeStream(dense_community.edge_list()))
        small = run(4)
        maximal = run(16)
        assert small.replication_degree < maximal.replication_degree

    def test_spread_monotone_trend(self, dense_community):
        from repro.graph.stream import InMemoryEdgeStream

        values = []
        for spread in (4, 8, 16):
            loader = ParallelLoader(
                lambda parts, clock: DBHPartitioner(parts, clock=clock),
                partitions=list(range(16)), num_instances=4, spread=spread)
            result = loader.run(
                InMemoryEdgeStream(dense_community.edge_list()))
            values.append(result.replication_degree)
        assert values[0] < values[1] < values[2]
