"""Write-ahead-log tests: record format, torn tails, recovery edges,
exactly-once seq semantics.

The chaos suite (``test_service_chaos.py``) proves crash safety end to
end; this file pins down the WAL building blocks — framing, checksum
rejection of torn records, topology verification, compaction — and the
daemon's seq/replay protocol through a live (uncrashed) daemon.
"""

import asyncio
import os

import pytest

from _service_utils import SupervisedDaemon
from repro.api import open_session
from repro.partitioning.hdrf import HDRFPartitioner
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import PartitionService
from repro.service.wal import (
    MAGIC,
    TenantWAL,
    WALError,
    read_wal,
    wal_path,
    wal_snapshot_path,
)
from test_service import EDGES, _expected_triples, _reference

HEADER = {"tenant": "t", "algorithm": "hdrf",
          "partitions": [0, 1, 2, 3], "format": 1}


def _write_wal(path, batches, fsync="off"):
    wal = TenantWAL(str(path), HEADER, fsync=fsync)
    for seq, batch in enumerate(batches, start=1):
        wal.append(seq, batch)
    wal.close()


class TestWALFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.wal"
        batches = [EDGES[:10], EDGES[10:25], EDGES[25:26]]
        _write_wal(path, batches)
        header, records, torn = read_wal(str(path))
        assert header == HEADER
        assert not torn
        assert records == [(i, batch) for i, batch
                           in enumerate(batches, start=1)]

    def test_torn_final_record_discarded(self, tmp_path):
        """A crash mid-write leaves a partial record: the checksum (or
        short frame) rejects it and everything before it survives."""
        path = tmp_path / "t.wal"
        _write_wal(path, [EDGES[:10], EDGES[10:20], EDGES[20:30]])
        intact = os.path.getsize(path)
        for cut in (1, 5, 11):  # inside frame header and payload
            with open(path, "r+b") as handle:
                handle.truncate(intact - cut)
            header, records, torn = read_wal(str(path))
            assert torn
            assert [seq for seq, _ in records] == [1, 2]
            with open(path, "r+b") as handle:  # restore for next cut
                handle.truncate(intact - cut)
            _write_wal(path, [EDGES[:10], EDGES[10:20], EDGES[20:30]])

    def test_corrupt_payload_rejected_by_checksum(self, tmp_path):
        path = tmp_path / "t.wal"
        _write_wal(path, [EDGES[:10], EDGES[10:20]])
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF  # flip a byte inside the last payload
        open(path, "wb").write(bytes(data))
        _, records, torn = read_wal(str(path))
        assert torn
        assert [seq for seq, _ in records] == [1]

    def test_bad_magic_and_missing_header(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"not a wal at all\n")
        with pytest.raises(WALError, match="bad magic"):
            read_wal(str(path))
        path.write_bytes(MAGIC)  # magic but no header record
        with pytest.raises(WALError, match="missing WAL header"):
            read_wal(str(path))

    def test_truncate_through_keeps_newer_records(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = TenantWAL(str(path), HEADER, fsync="off")
        for seq in range(1, 7):
            wal.append(seq, EDGES[seq:seq + 3])
        wal.truncate_through(4)
        wal.append(7, EDGES[7:9])  # appends continue after compaction
        wal.close()
        header, records, torn = read_wal(str(path))
        assert header == HEADER
        assert not torn
        assert [seq for seq, _ in records] == [5, 6, 7]

    def test_fsync_mode_validated(self, tmp_path):
        with pytest.raises(WALError, match="unknown fsync mode"):
            TenantWAL(str(tmp_path / "t.wal"), HEADER, fsync="sometimes")


def _seed_tenant(wal_dir, batches):
    """Hand-build the on-disk state of a tenant: snapshot at seq 0 plus
    a WAL holding ``batches`` — what a daemon killed before its first
    compaction leaves behind."""
    os.makedirs(wal_dir, exist_ok=True)
    session = open_session(algorithm="hdrf", partitions=4)
    snapshot = session.snapshot()
    snapshot.seq = 0
    snapshot.save(wal_snapshot_path(str(wal_dir), "t"))
    _write_wal(wal_path(str(wal_dir), "t"), batches)


class TestRecoveryEdges:
    def test_torn_wal_tail_skipped_on_recovery(self, tmp_path):
        """Recovery over a torn WAL resumes from the intact prefix; the
        client re-ingests the torn batch and parity holds."""
        wal_dir = tmp_path / "wal"
        batches = [EDGES[i:i + 40] for i in range(0, 200, 40)]
        _seed_tenant(wal_dir, batches)
        log = wal_path(str(wal_dir), "t")
        with open(log, "r+b") as handle:  # tear the final record
            handle.truncate(os.path.getsize(log) - 9)

        daemon = SupervisedDaemon(wal_dir=str(wal_dir))
        port = daemon.start()
        try:
            with ServiceClient(port=port) as client:
                assert daemon.last_recovered() == {"t": 4}
                seq = client.resume_seq("t")
                assert seq == 4  # batch 5 was torn away
                client.ingest("t", batches[4])  # re-ingest it
                for start in range(200, len(EDGES), 40):
                    client.ingest("t", EDGES[start:start + 40])
                final = client.finalize("t")
        finally:
            daemon.shutdown()
        reference = _reference(HDRFPartitioner, 4, EDGES)
        assert final["assignments"] == _expected_triples(reference)

    def test_topology_mismatch_refused(self, tmp_path):
        wal_dir = tmp_path / "wal"
        _seed_tenant(wal_dir, [EDGES[:10]])
        session = open_session(algorithm="hdrf", partitions=8)
        snapshot = session.snapshot()  # claims 8 partitions, WAL says 4
        snapshot.seq = 0
        snapshot.save(wal_snapshot_path(str(wal_dir), "t"))

        async def boot():
            await PartitionService(wal_dir=str(wal_dir)).start()

        with pytest.raises(WALError, match="topology mismatch"):
            asyncio.run(boot())

    def test_wal_without_snapshot_refused(self, tmp_path):
        wal_dir = tmp_path / "wal"
        os.makedirs(wal_dir)
        _write_wal(wal_path(str(wal_dir), "ghost"), [EDGES[:10]])

        async def boot():
            await PartitionService(wal_dir=str(wal_dir)).start()

        with pytest.raises(WALError, match="without its snapshot"):
            asyncio.run(boot())

    def test_pre_seq_snapshot_still_loads(self, tmp_path):
        """A snapshot pickled before the ``seq`` field existed restores
        with a high-water mark of 0 (snapshot_dir compatibility)."""
        snapshot_dir = tmp_path / "snapshots"
        os.makedirs(snapshot_dir)
        session = open_session(algorithm="hdrf", partitions=4)
        session.ingest(EDGES[:50])
        snapshot = session.snapshot()
        delattr(snapshot, "seq")  # simulate an old pickle
        snapshot.save(str(snapshot_dir / "legacy.snapshot"))

        daemon = SupervisedDaemon(snapshot_dir=str(snapshot_dir))
        port = daemon.start()
        try:
            with ServiceClient(port=port) as client:
                tenants = client.tenants()
                assert [t["tenant"] for t in tenants] == ["legacy"]
                assert tenants[0]["edges_ingested"] == 50
                stats = client.stats("legacy")
                assert stats["accepted_seq"] == 0
                assert stats["durability"]["wal"] is False
        finally:
            daemon.shutdown()


class TestExactlyOnce:
    """Seq/replay protocol through a live daemon (no crashes)."""

    @pytest.fixture
    def wal_daemon(self, tmp_path):
        daemon = SupervisedDaemon(wal_dir=str(tmp_path / "wal"),
                                  wal_compact_every=4, replay_depth=4)
        port = daemon.start()
        yield port, daemon
        daemon.shutdown()

    def test_duplicate_seq_replays_cached_response(self, wal_daemon):
        port, _ = wal_daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            first = client.request({"op": "ingest", "tenant": "t",
                                    "edges": EDGES[:30], "seq": 1})
            again = client.request({"op": "ingest", "tenant": "t",
                                    "edges": EDGES[:30], "seq": 1})
            assert again["replayed"] is True
            assert again["assignments"] == first["assignments"]
            stats = client.stats("t")
            assert stats["session"]["edges_ingested"] == 30  # applied once
            assert stats["accepted_seq"] == stats["applied_seq"] == 1

    def test_seq_gap_refused(self, wal_daemon):
        port, _ = wal_daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            client.ingest("t", EDGES[:10])  # seq 1 via the client counter
            with pytest.raises(ServiceError, match="seq gap"):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": EDGES[:5], "seq": 7})

    def test_evicted_seq_reports_clear_error(self, wal_daemon):
        port, _ = wal_daemon  # replay_depth=4
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            for seq in range(1, 7):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": EDGES[seq:seq + 5], "seq": seq})
            with pytest.raises(ServiceError, match="replay cache"):
                client.request({"op": "ingest", "tenant": "t",
                                "edges": EDGES[1:6], "seq": 1})

    def test_compaction_bounds_wal_and_preserves_parity(self, wal_daemon):
        """With wal_compact_every=4, the on-disk WAL stays short while
        the stream's full history survives via snapshots."""
        port, daemon = wal_daemon
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            for start in range(0, len(EDGES), 40):
                client.ingest("t", EDGES[start:start + 40])
            stats = client.stats("t")
            assert stats["durability"]["wal"] is True
            assert stats["durability"]["compacted_seq"] >= 4
            log = wal_path(daemon.kwargs["wal_dir"], "t")
            _, records, torn = read_wal(log)
            assert not torn
            assert len(records) < 8  # compaction kept the log short
            final = client.finalize("t")
            assert not os.path.exists(log)  # finalize retires the WAL
        reference = _reference(HDRFPartitioner, 4, EDGES)
        assert final["assignments"] == _expected_triples(reference)

    def test_graceful_stop_then_restart_resumes_from_wal_dir(
            self, tmp_path):
        """shutdown over a wal_dir compacts; a new daemon over the same
        directory resumes (snapshot_dir not needed at all)."""
        wal_dir = str(tmp_path / "wal")
        daemon = SupervisedDaemon(wal_dir=wal_dir)
        port = daemon.start()
        cut = 600
        with ServiceClient(port=port) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            for start in range(0, cut, 60):
                client.ingest("t", EDGES[start:start + 60])
        daemon.shutdown()

        daemon2 = SupervisedDaemon(wal_dir=wal_dir)
        port2 = daemon2.start()
        try:
            with ServiceClient(port=port2) as client:
                assert client.resume_seq("t") == cut // 60
                for start in range(cut, len(EDGES), 60):
                    client.ingest("t", EDGES[start:start + 60])
                final = client.finalize("t")
        finally:
            daemon2.shutdown()
        reference = _reference(HDRFPartitioner, 4, EDGES)
        assert final["assignments"] == _expected_triples(reference)
