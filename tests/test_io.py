"""Unit tests for edge-list IO."""

import pytest

from repro.graph.graph import Edge, Graph
from repro.graph.io import (
    count_edges,
    iter_edge_file,
    parse_edge_line,
    read_graph,
    write_edges,
    write_graph,
)


class TestParseEdgeLine:
    def test_parses_pair(self):
        assert parse_edge_line("3 7\n") == Edge(3, 7)

    def test_ignores_blank(self):
        assert parse_edge_line("   \n") is None

    def test_ignores_hash_comment(self):
        assert parse_edge_line("# header\n") is None

    def test_ignores_percent_comment(self):
        assert parse_edge_line("% konect header\n") is None

    def test_tolerates_extra_columns(self):
        assert parse_edge_line("1 2 1.5\n") == Edge(1, 2)

    def test_rejects_single_token(self):
        with pytest.raises(ValueError):
            parse_edge_line("42\n")

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            parse_edge_line("a b\n")


class TestFileRoundTrip:
    def test_write_then_read(self, tmp_path, two_triangles):
        path = tmp_path / "g.txt"
        written = write_graph(path, two_triangles, header="test graph")
        assert written == two_triangles.num_edges
        loaded = read_graph(path)
        assert loaded.num_edges == two_triangles.num_edges
        assert set(loaded.edges()) == set(two_triangles.edges())

    def test_count_edges_ignores_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n1 2\n\n2 3\n% trailer\n")
        assert count_edges(path) == 2

    def test_iter_edge_file_streams(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n3 4\n")
        assert list(iter_edge_file(path)) == [Edge(1, 2), Edge(3, 4)]

    def test_read_graph_skips_self_loops(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 1\n1 2\n")
        graph = read_graph(path)
        assert graph.num_edges == 1

    def test_write_edges_header_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edges(path, [(1, 2)], header="line one\nline two")
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")
        assert count_edges(path) == 1
