"""Tests for repository tooling (EXPERIMENTS.md assembly)."""

import importlib.util
import os
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(ROOT, "tools", "build_experiments_md.py")


@pytest.fixture
def builder():
    spec = importlib.util.spec_from_file_location("build_experiments_md",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExperimentsBuilder:
    def test_sections_cover_every_paper_artifact(self, builder):
        stems = {stem for stem, _, _ in builder.SECTIONS}
        # Every numbered artifact of the paper must have a section.
        for required in ("table2_graphs", "fig1_landscape",
                         "fig7a_pagerank_brain", "fig7b_pagerank_web",
                         "fig7c_pagerank_orkut", "fig7d_subgraph_brain",
                         "fig7e_coloring_web", "fig7f_clique_orkut",
                         "fig7g_replication_brain", "fig7h_replication_web",
                         "fig7i_replication_orkut", "fig8_spotlight"):
            assert required in stems, required

    def test_every_section_has_commentary(self, builder):
        for stem, title, commentary in builder.SECTIONS:
            assert len(commentary.strip()) > 100, stem
            assert title

    def test_sections_match_bench_files(self, builder):
        """Each figure section corresponds to an actual bench module."""
        bench_dir = os.path.join(ROOT, "benchmarks")
        benches = {name for name in os.listdir(bench_dir)
                   if name.startswith("bench_")}
        for stem, _, _ in builder.SECTIONS:
            if stem.startswith(("fig", "table", "ablation", "window")):
                expected_prefix = f"bench_{stem.split('_')[0]}"
                assert any(b.startswith(expected_prefix) for b in benches), stem


class TestRepositoryLayout:
    def test_examples_present_and_runnable_syntax(self):
        examples = os.path.join(ROOT, "examples")
        scripts = [f for f in os.listdir(examples) if f.endswith(".py")]
        assert len(scripts) >= 5
        for script in scripts:
            path = os.path.join(examples, script)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            compile(source, path, "exec")  # syntax must be valid
            assert '"""' in source  # every example carries a docstring
            assert "def main()" in source

    def test_one_bench_per_figure(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        benches = sorted(name for name in os.listdir(bench_dir)
                         if name.startswith("bench_fig7"))
        # Fig. 7 has nine panels (a-i).
        assert len(benches) == 9

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md"):
            path = os.path.join(ROOT, doc)
            assert os.path.exists(path)
            with open(path, "r", encoding="utf-8") as handle:
                assert len(handle.read()) > 1000
