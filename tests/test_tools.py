"""Tests for repository tooling (EXPERIMENTS.md assembly, bench gates)."""

import importlib.util
import json
import os

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(ROOT, "tools", "build_experiments_md.py")
REGRESSION_SCRIPT = os.path.join(ROOT, "tools", "check_bench_regression.py")


def _load(name, path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def builder():
    return _load("build_experiments_md", SCRIPT)


@pytest.fixture
def regression():
    return _load("check_bench_regression", REGRESSION_SCRIPT)


class TestExperimentsBuilder:
    def test_sections_cover_every_paper_artifact(self, builder):
        stems = {stem for stem, _, _ in builder.SECTIONS}
        # Every numbered artifact of the paper must have a section.
        for required in ("table2_graphs", "fig1_landscape",
                         "fig7a_pagerank_brain", "fig7b_pagerank_web",
                         "fig7c_pagerank_orkut", "fig7d_subgraph_brain",
                         "fig7e_coloring_web", "fig7f_clique_orkut",
                         "fig7g_replication_brain", "fig7h_replication_web",
                         "fig7i_replication_orkut", "fig8_spotlight"):
            assert required in stems, required

    def test_every_section_has_commentary(self, builder):
        for stem, title, commentary in builder.SECTIONS:
            assert len(commentary.strip()) > 100, stem
            assert title

    def test_sections_match_bench_files(self, builder):
        """Each figure section corresponds to an actual bench module."""
        bench_dir = os.path.join(ROOT, "benchmarks")
        benches = {name for name in os.listdir(bench_dir)
                   if name.startswith("bench_")}
        for stem, _, _ in builder.SECTIONS:
            if stem.startswith(("fig", "table", "ablation", "window")):
                expected_prefix = f"bench_{stem.split('_')[0]}"
                assert any(b.startswith(expected_prefix) for b in benches), stem


def _report(gates=None, **speedups):
    return {
        "workload": "powerlaw-smoke",
        "gates": gates or {},
        "results": [{"algorithm": name, "speedup": speedup, "parity": True,
                     "fast_eps": 1000.0}
                    for name, speedup in speedups.items()],
    }


class TestBenchRegressionChecker:
    def test_identical_reports_pass(self, regression):
        report = _report(HDRF=3.0, DBH=1.0)
        assert regression.compare(report, report, tolerance=0.2) == ([], [])

    def test_within_tolerance_passes(self, regression):
        base = _report(HDRF=3.0)
        fresh = _report(HDRF=2.5)  # -17% is inside the 20% budget
        assert regression.compare(base, fresh, tolerance=0.2) == ([], [])

    def test_regression_beyond_tolerance_fails(self, regression):
        base = _report(HDRF=3.0)
        fresh = _report(HDRF=2.0)
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert problems and "HDRF" in problems[0]

    def test_drop_above_absolute_gate_is_warning(self, regression):
        """Cross-machine ratio spread: above the gate -> warn, don't fail."""
        base = _report(gates={"HDRF": 1.3}, HDRF=3.0)
        fresh = _report(HDRF=2.0)  # -33%, but well above the 1.3x gate
        problems, warnings = regression.compare(base, fresh, tolerance=0.2)
        assert problems == []
        assert warnings and "HDRF" in warnings[0]

    def test_drop_below_absolute_gate_fails(self, regression):
        base = _report(gates={"HDRF": 1.3}, HDRF=3.0)
        fresh = _report(HDRF=1.1)
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert problems and "HDRF" in problems[0]

    def test_below_gate_fails_even_within_relative_tolerance(self, regression):
        """The checker is CI's only gate: the absolute floor must bind
        even when the relative drop is small."""
        base = _report(gates={"HDRF": 1.3}, HDRF=1.35)
        fresh = _report(HDRF=1.2)  # -11% relative, but under the 1.3x gate
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert problems and "absolute gate" in problems[0]

    def test_parity_break_fails(self, regression):
        base = _report(HDRF=3.0)
        fresh = _report(HDRF=3.0)
        fresh["results"][0]["parity"] = False
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert any("parity" in p for p in problems)

    def test_missing_algorithm_fails(self, regression):
        base = _report(HDRF=3.0, Greedy=2.0)
        fresh = _report(HDRF=3.0)
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert any("Greedy" in p for p in problems)

    def test_workload_mismatch_fails(self, regression):
        base = _report(HDRF=3.0)
        fresh = _report(HDRF=3.0)
        fresh["workload"] = "other"
        problems, _ = regression.compare(base, fresh, tolerance=0.2)
        assert problems

    def test_committed_baseline_is_valid(self, regression):
        """BENCH_seed.json must parse, carry gates, and pass vs itself."""
        baseline = regression.load(regression.DEFAULT_BASELINE)
        assert baseline["results"], "baseline has no rows"
        assert baseline.get("gates"), "baseline must embed absolute gates"
        assert regression.compare(baseline, baseline,
                                  tolerance=0.2) == ([], [])
        for row in baseline["results"]:
            assert row["parity"], row["algorithm"]

    def test_cli_pass_and_fail(self, regression, tmp_path):
        base = _report(HDRF=3.0)
        fresh_ok = _report(HDRF=2.9)
        fresh_bad = _report(HDRF=1.0)
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(base))
        ok_path = tmp_path / "ok.json"
        ok_path.write_text(json.dumps(fresh_ok))
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps(fresh_bad))
        assert regression.main(["--fresh", str(ok_path),
                                "--baseline", str(base_path)]) == 0
        assert regression.main(["--fresh", str(bad_path),
                                "--baseline", str(base_path)]) == 1


class TestRepositoryLayout:
    def test_examples_present_and_runnable_syntax(self):
        examples = os.path.join(ROOT, "examples")
        scripts = [f for f in os.listdir(examples) if f.endswith(".py")]
        assert len(scripts) >= 5
        for script in scripts:
            path = os.path.join(examples, script)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            compile(source, path, "exec")  # syntax must be valid
            assert '"""' in source  # every example carries a docstring
            assert "def main()" in source

    def test_one_bench_per_figure(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        benches = sorted(name for name in os.listdir(bench_dir)
                         if name.startswith("bench_fig7"))
        # Fig. 7 has nine panels (a-i).
        assert len(benches) == 9

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md"):
            path = os.path.join(ROOT, doc)
            assert os.path.exists(path)
            with open(path, "r", encoding="utf-8") as handle:
                assert len(handle.read()) > 1000
