"""Tests for the extended graph statistics."""

import math

import pytest

from repro.graph.graph import Graph
from repro.graph.generators import barabasi_albert_graph
from repro.graph.stats import (
    degree_percentile,
    powerlaw_exponent,
    triangle_count,
)


class TestTriangleCount:
    def test_triangle(self, triangle):
        assert triangle_count(triangle) == 1

    def test_star(self, star):
        assert triangle_count(star) == 0

    def test_k4(self):
        k4 = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        assert triangle_count(k4) == 4

    def test_two_triangles_sharing_vertex(self, two_triangles):
        assert triangle_count(two_triangles) == 2

    def test_empty(self):
        assert triangle_count(Graph()) == 0


class TestPowerlawExponent:
    def test_ba_graph_in_plausible_range(self):
        graph = barabasi_albert_graph(3000, 4, seed=1)
        alpha = powerlaw_exponent(graph, xmin=4)
        # BA graphs have a theoretical exponent of 3.
        assert 2.0 < alpha < 4.5

    def test_regular_graph_degenerate(self):
        cycle = Graph([(i, (i + 1) % 8) for i in range(8)])
        # All degrees equal xmin -> denominator ~ 0 handled.
        alpha = powerlaw_exponent(cycle, xmin=2)
        assert alpha > 1.0 or math.isinf(alpha)

    def test_empty_graph_inf(self):
        assert math.isinf(powerlaw_exponent(Graph()))

    def test_invalid_xmin(self):
        with pytest.raises(ValueError):
            powerlaw_exponent(Graph(), xmin=0)


class TestDegreePercentile:
    def test_star_percentiles(self, star):
        assert degree_percentile(star, 0.0) == 1
        assert degree_percentile(star, 1.0) == 5

    def test_median_of_path(self, path_graph):
        assert degree_percentile(path_graph, 0.5) == 2

    def test_empty_graph(self):
        assert degree_percentile(Graph(), 0.5) == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            degree_percentile(Graph(), 1.5)
