"""Unit tests for the synthetic graph generators.

These verify the structural properties the substitution argument in
DESIGN.md relies on: edge counts, degree skew, and the clustering
coefficient bands of the three Table II analogues.
"""

import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    brain_like_graph,
    orkut_like_graph,
    powerlaw_cluster_graph,
    rmat_graph,
    watts_strogatz_graph,
    web_like_graph,
)
from repro.graph.stats import average_clustering, degree_skewness, max_degree


class TestBarabasiAlbert:
    def test_vertex_and_edge_counts(self):
        graph = barabasi_albert_graph(100, 3, seed=1)
        assert graph.num_vertices == 100
        # m seed edges + m per newcomer
        assert graph.num_edges == 3 + 3 * (100 - 4)

    def test_deterministic(self):
        a = barabasi_albert_graph(50, 2, seed=9)
        b = barabasi_albert_graph(50, 2, seed=9)
        assert set(a.edges()) == set(b.edges())

    def test_seed_changes_graph(self):
        a = barabasi_albert_graph(50, 2, seed=1)
        b = barabasi_albert_graph(50, 2, seed=2)
        assert set(a.edges()) != set(b.edges())

    def test_degree_skew_positive(self):
        graph = barabasi_albert_graph(500, 3, seed=4)
        assert degree_skewness(graph) > 1.0

    def test_low_clustering(self):
        graph = barabasi_albert_graph(1000, 4, seed=4)
        assert average_clustering(graph, sample_size=None) < 0.12

    def test_rejects_m_ge_n(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(5, 5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            barabasi_albert_graph(0, 1)


class TestPowerlawCluster:
    def test_counts(self):
        graph = powerlaw_cluster_graph(100, 3, 0.8, seed=1)
        assert graph.num_vertices == 100
        assert graph.num_edges == 3 + 3 * (100 - 4)

    def test_clustering_above_ba(self):
        pl = powerlaw_cluster_graph(400, 3, 0.9, seed=2)
        ba = barabasi_albert_graph(400, 3, seed=2)
        assert (average_clustering(pl, sample_size=None)
                > average_clustering(ba, sample_size=None))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            powerlaw_cluster_graph(10, 2, 1.5)

    def test_deterministic(self):
        a = powerlaw_cluster_graph(60, 2, 0.7, seed=3)
        b = powerlaw_cluster_graph(60, 2, 0.7, seed=3)
        assert set(a.edges()) == set(b.edges())


class TestWattsStrogatz:
    def test_ring_lattice_degree(self):
        graph = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert all(graph.degree(v) == 4 for v in graph.vertices())
        assert graph.num_edges == 20 * 2

    def test_rewired_preserves_edge_count(self):
        graph = watts_strogatz_graph(50, 4, 0.3, seed=1)
        assert graph.num_edges == 50 * 2

    def test_high_clustering_at_low_p(self):
        graph = watts_strogatz_graph(100, 6, 0.05, seed=1)
        assert average_clustering(graph, sample_size=None) > 0.3

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, 3, 0.1)


class TestRmat:
    def test_vertex_id_range(self):
        graph = rmat_graph(scale=6, edge_factor=4, seed=1)
        assert all(0 <= v < 64 for v in graph.vertices())

    def test_skewed_degrees(self):
        graph = rmat_graph(scale=9, edge_factor=8, seed=2)
        assert degree_skewness(graph) > 1.0

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat_graph(4, 2, a=0.6, b=0.3, c=0.2)


class TestWebLike:
    def test_community_structure_gives_high_clustering(self):
        graph = web_like_graph(num_communities=15, community_size=10, seed=1)
        assert average_clustering(graph, sample_size=None) > 0.6

    def test_hub_vertices_have_high_degree(self):
        graph = web_like_graph(num_communities=20, community_size=8,
                               inter_edges=3, seed=1)
        # Hubs are vertices 0, 8, 16, ... — the max degree vertex is a hub.
        hubs = {c * 8 for c in range(20)}
        degrees = {v: graph.degree(v) for v in graph.vertices()}
        top = max(degrees, key=degrees.get)
        assert top in hubs

    def test_small_community_rejected(self):
        with pytest.raises(ValueError):
            web_like_graph(5, 2)


class TestTableIIAnalogues:
    """The three analogues must land in their clustering bands (Table II)."""

    def test_orkut_band_low(self):
        graph = orkut_like_graph(n=1500, m=8, seed=7)
        assert average_clustering(graph, sample_size=None) < 0.12

    def test_brain_band_moderate(self):
        graph = brain_like_graph(n=1500, m=8, p=0.92, seed=7)
        c = average_clustering(graph, sample_size=None)
        assert 0.2 < c < 0.7

    def test_web_band_high(self):
        graph = web_like_graph(num_communities=100, community_size=14,
                               intra_p=0.92, seed=7)
        assert average_clustering(graph, sample_size=None) > 0.7

    def test_band_ordering_matches_paper(self):
        orkut = orkut_like_graph(n=1200, m=8, seed=7)
        brain = brain_like_graph(n=1200, m=8, seed=7)
        web = web_like_graph(num_communities=80, community_size=14, seed=7)
        c_orkut = average_clustering(orkut, sample_size=None)
        c_brain = average_clustering(brain, sample_size=None)
        c_web = average_clustering(web, sample_size=None)
        assert c_orkut < c_brain < c_web
