"""Coverage for engine/placement.py + engine/cost.py edge paths.

Targets the gaps the cluster runtime now leans on: custom
``machine_of_partition`` maps (arbitrary, non-contiguous, validated),
bottleneck-machine attribution in :class:`SuperstepCost`, and the
``local_message_factor`` discount path end to end.
"""

from __future__ import annotations

import pytest

from repro.engine.cost import CostModel, cost_model_for
from repro.engine.placement import Placement
from repro.graph.graph import Edge


def chain_assignments(k: int) -> dict:
    """A path graph with edge i on partition i — every interior vertex
    is replicated on exactly two adjacent partitions."""
    return {Edge(i, i + 1): i for i in range(k)}


class TestCustomMachineMaps:
    def test_non_contiguous_map_respected(self):
        # Interleave partitions across machines: 0,2 -> m1; 1,3 -> m0.
        machine_of = {0: 1, 1: 0, 2: 1, 3: 0}
        placement = Placement(chain_assignments(4), partitions=range(4),
                              num_machines=2,
                              machine_of_partition=machine_of)
        assert placement.machine_of_partition == machine_of
        stats = placement.stats()
        # Every partition holds one edge.
        assert stats.edges_per_machine == {0: 2, 1: 2}
        # All three replicated vertices span both machines, so every
        # sync pair is remote under the interleaved map...
        assert stats.local_sync_per_machine == {0: 0, 1: 0}
        assert stats.remote_sync_per_machine == {0: 6, 1: 6}
        # ...whereas the default contiguous map keeps two of them local.
        contiguous = Placement(chain_assignments(4), partitions=range(4),
                               num_machines=2)
        contiguous_stats = contiguous.stats()
        assert contiguous_stats.remote_sync_per_machine == {0: 2, 1: 2}
        assert contiguous_stats.local_sync_per_machine == {0: 4, 1: 4}

    def test_machine_span_follows_custom_map(self):
        machine_of = {0: 0, 1: 0, 2: 0, 3: 0}
        placement = Placement(chain_assignments(4), partitions=range(4),
                              num_machines=3,
                              machine_of_partition=machine_of)
        # Partition span is 2 for interior vertices, machine span is 1.
        assert placement.stats().replication_degree > \
            placement.stats().machine_span_degree
        assert all(placement.span(v) == 1
                   for v in placement.vertex_machines)

    def test_master_machine_is_min_over_replica_machines(self):
        machine_of = {0: 2, 1: 1, 2: 0}
        placement = Placement({Edge(0, 1): 0, Edge(1, 2): 1,
                               Edge(1, 3): 2},
                              partitions=range(3), num_machines=3,
                              machine_of_partition=machine_of)
        # Vertex 1 is on partitions {0, 1, 2} -> machines {2, 1, 0}.
        assert placement.vertex_machines[1] == {0, 1, 2}
        assert placement.master_machine[1] == 0

    def test_partition_without_machine_rejected(self):
        with pytest.raises(ValueError, match="without a machine"):
            Placement(chain_assignments(3), partitions=range(3),
                      num_machines=2, machine_of_partition={0: 0, 1: 1})

    def test_assignment_to_unknown_partition_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            Placement({Edge(0, 1): 5}, partitions=range(2),
                      num_machines=1)


class TestBottleneckAttribution:
    def test_bottleneck_is_the_loaded_machine(self):
        # Machine 1 (partition 1) carries 10 edges, machine 0 one edge.
        assignments = {Edge(0, 1): 0}
        assignments.update({Edge(100 + i, 200 + i): 1 for i in range(10)})
        placement = Placement(assignments, partitions=range(2),
                              num_machines=2)
        cost = CostModel(message_ms=0.0).superstep_cost(placement.stats())
        assert cost.bottleneck_machine == 1
        assert cost.compute_ms > 0.0
        assert cost.comm_ms == 0.0

    def test_bottleneck_can_be_comm_bound(self):
        # Machine 0 has few edges but all the replica sync; machine 1
        # has the edges.  A comm-heavy model moves the bottleneck.
        assignments = {Edge(0, i): i % 2 for i in range(1, 9)}
        placement = Placement(assignments, partitions=range(2),
                              num_machines=2)
        compute_bound = CostModel(edge_compute_ms=1.0, message_ms=0.0)
        comm_bound = CostModel(edge_compute_ms=0.0, message_ms=1.0)
        stats = placement.stats()
        compute_cost = compute_bound.superstep_cost(stats)
        comm_cost = comm_bound.superstep_cost(stats)
        assert compute_cost.comm_ms == 0.0
        assert comm_cost.compute_ms == 0.0
        assert comm_cost.comm_ms > 0.0

    def test_total_is_bottleneck_plus_overhead(self):
        placement = Placement(chain_assignments(4), partitions=range(4),
                              num_machines=2)
        model = CostModel(superstep_overhead_ms=2.5)
        cost = model.superstep_cost(placement.stats())
        assert cost.total_ms == pytest.approx(
            cost.compute_ms + cost.comm_ms + 2.5)

    def test_active_fraction_scales_both_terms(self):
        placement = Placement(chain_assignments(4), partitions=range(4),
                              num_machines=2)
        model = CostModel(superstep_overhead_ms=0.0)
        full = model.superstep_cost(placement.stats(), 1.0)
        half = model.superstep_cost(placement.stats(), 0.5)
        assert half.compute_ms == pytest.approx(full.compute_ms / 2)
        assert half.comm_ms == pytest.approx(full.comm_ms / 2)

    def test_active_fraction_validated(self):
        placement = Placement(chain_assignments(2), partitions=range(2),
                              num_machines=1)
        with pytest.raises(ValueError):
            CostModel().superstep_cost(placement.stats(), 1.5)
        with pytest.raises(ValueError):
            CostModel().superstep_cost(placement.stats(), -0.1)


class TestLocalMessageFactor:
    def placement_one_machine(self) -> Placement:
        """All partitions co-located: every sync message is local."""
        return Placement(chain_assignments(4), partitions=range(4),
                         num_machines=1)

    def test_factor_zero_makes_local_sync_free(self):
        placement = self.placement_one_machine()
        model = CostModel(edge_compute_ms=0.0, superstep_overhead_ms=0.0,
                          local_message_factor=0.0)
        assert model.superstep_cost(placement.stats()).total_ms == 0.0

    def test_factor_one_equals_remote_price(self):
        local = self.placement_one_machine()
        # Same topology split so all sync goes remote, balanced so the
        # bottleneck machine sees half the endpoints.
        remote = Placement(chain_assignments(4), partitions=range(4),
                           num_machines=2,
                           machine_of_partition={0: 1, 1: 0, 2: 1, 3: 0})
        model = CostModel(edge_compute_ms=0.0, superstep_overhead_ms=0.0,
                          local_message_factor=1.0)
        local_stats = local.stats()
        remote_stats = remote.stats()
        # Sanity: same total sync volume, differently classified.
        assert sum(local_stats.local_sync_per_machine.values()) == \
            sum(remote_stats.remote_sync_per_machine.values())
        local_cost = model.superstep_cost(local_stats)
        # One machine carries all 12 endpoint charges at factor 1.0;
        # the remote split's bottleneck carries 6 at full price.
        remote_cost = model.superstep_cost(remote_stats)
        assert local_cost.comm_ms == pytest.approx(2 * remote_cost.comm_ms)

    def test_cost_scales_linearly_in_factor(self):
        placement = self.placement_one_machine()
        stats = placement.stats()
        costs = [CostModel(edge_compute_ms=0.0, superstep_overhead_ms=0.0,
                           local_message_factor=f)
                 .superstep_cost(stats).comm_ms
                 for f in (0.25, 0.5, 1.0)]
        assert costs[1] == pytest.approx(2 * costs[0])
        assert costs[2] == pytest.approx(4 * costs[0])

    def test_sync_messages_per_machine_property(self):
        placement = Placement(chain_assignments(4), partitions=range(4),
                              num_machines=2)
        stats = placement.stats()
        assert stats.sync_messages_per_machine == {
            machine: stats.remote_sync_per_machine[machine]
            + stats.local_sync_per_machine[machine]
            for machine in stats.edges_per_machine}

    def test_workload_presets_keep_factor_overridable(self):
        model = cost_model_for("pagerank", local_message_factor=0.0)
        assert model.local_message_factor == 0.0
        assert model.compute_weight == 1.0
        with pytest.raises(KeyError):
            cost_model_for("not-a-workload")
