"""Differential tests: the fast path must equal the legacy path exactly.

The array-backed :class:`FastPartitionState` plus the batched scoring
kernels are only admissible because they are *bit-identical* to the
dict-backed legacy path — same assignments, same replication degree,
same imbalance, same simulated latency.  These tests enforce that
contract with property-based random streams and targeted unit checks of
the state API itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adwise import AdwisePartitioner
from repro.core.scoring import AdaptiveBalancer, AdwiseScoring
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.fast_state import FastPartitionState
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.state import PartitionState
from repro.partitioning.validate import validate_result
from repro.simtime import SimulatedClock


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)).filter(
        lambda t: t[0] != t[1]),
    min_size=1, max_size=100)

partition_counts = st.integers(2, 9)


def stream_of(pairs):
    return InMemoryEdgeStream([Edge(u, v) for u, v in pairs])


def run_both(factory, pairs):
    legacy = factory(fast=False).partition_stream(stream_of(pairs))
    fast = factory(fast=True).partition_stream(stream_of(pairs))
    return legacy, fast


def assert_identical(legacy, fast):
    assert fast.assignments == legacy.assignments
    assert fast.replication_degree == legacy.replication_degree
    assert fast.imbalance == legacy.imbalance
    assert fast.latency_ms == legacy.latency_ms
    assert fast.score_computations == legacy.score_computations


# ---------------------------------------------------------------------------
# Property-based parity on random streams
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=60)
@given(edge_lists, partition_counts)
def test_hdrf_parity(pairs, k):
    legacy, fast = run_both(
        lambda fast: HDRFPartitioner(range(k), fast=fast), pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=60)
@given(edge_lists, partition_counts)
def test_greedy_parity(pairs, k):
    legacy, fast = run_both(
        lambda fast: GreedyPartitioner(range(k), fast=fast), pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=60)
@given(edge_lists, partition_counts)
def test_dbh_parity(pairs, k):
    legacy, fast = run_both(
        lambda fast: DBHPartitioner(range(k), fast=fast), pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=25)
@given(edge_lists, partition_counts)
def test_adwise_adaptive_parity(pairs, k):
    """Full ADWISE: adaptive window + adaptive λ + clustering score."""
    legacy, fast = run_both(
        lambda fast: AdwisePartitioner(range(k), latency_preference_ms=5.0,
                                       fast=fast), pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=25)
@given(edge_lists, partition_counts, st.integers(1, 16))
def test_adwise_fixed_window_parity(pairs, k, window):
    legacy, fast = run_both(
        lambda fast: AdwisePartitioner(range(k), fixed_window=window,
                                       fast=fast), pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=20)
@given(edge_lists, partition_counts)
def test_adwise_no_clustering_parity(pairs, k):
    legacy, fast = run_both(
        lambda fast: AdwisePartitioner(range(k), latency_preference_ms=5.0,
                                       use_clustering=False, fast=fast),
        pairs)
    assert_identical(legacy, fast)


@settings(deadline=None, max_examples=40)
@given(edge_lists, partition_counts)
def test_fast_state_matches_legacy_after_identical_mutations(pairs, k):
    """Drive both states through the same mutation sequence directly."""
    legacy = PartitionState(range(k))
    fast = FastPartitionState(range(k))
    for i, (u, v) in enumerate(pairs):
        edge = Edge(u, v).canonical()
        legacy.observe_degrees(edge)
        fast.observe_degrees(edge)
        target = (u + v + i) % k
        assert fast.assign(edge, target) == legacy.assign(edge, target)
        assert fast.max_size == legacy.max_size
        assert fast.min_size == legacy.min_size
        assert fast.imbalance() == legacy.imbalance()
    assert fast.replica_sets == legacy.replica_sets
    assert fast.partition_edges == legacy.partition_edges
    assert fast.degree == legacy.degree
    assert fast.max_degree == legacy.max_degree
    assert fast.total_replicas() == legacy.total_replicas()
    assert fast.replication_degree() == legacy.replication_degree()
    for v in range(31):
        assert fast.replicas(v) == legacy.replicas(v)
        assert fast.degree_of(v) == legacy.degree_of(v)
        for p in range(k):
            assert fast.is_replicated_on(v, p) == legacy.is_replicated_on(v, p)


@settings(deadline=None, max_examples=30)
@given(edge_lists, partition_counts)
def test_score_all_matches_scalar_scores(pairs, k):
    """The batched ADWISE kernel equals k scalar score() calls exactly."""
    state = FastPartitionState(range(k))
    scoring = AdwiseScoring(state, balancer=AdaptiveBalancer(len(pairs)))
    neighborhood = {pairs[0][0], pairs[0][1]}
    for i, (u, v) in enumerate(pairs):
        edge = Edge(u, v).canonical()
        state.observe_degrees(edge)
        batched = scoring.score_all(edge, neighborhood)
        scalar = [scoring.score(edge, p, neighborhood) for p in range(k)]
        assert list(batched) == scalar
        state.assign(edge, (u + i) % k)
        scoring.after_assignment()


# ---------------------------------------------------------------------------
# Fast state API unit tests
# ---------------------------------------------------------------------------

class TestFastPartitionState:
    def test_rejects_empty_spread(self):
        with pytest.raises(ValueError):
            FastPartitionState([])

    def test_rejects_duplicate_partitions(self):
        with pytest.raises(ValueError):
            FastPartitionState([1, 1])

    def test_rejects_assignment_outside_spread(self):
        state = FastPartitionState([0, 1])
        with pytest.raises(ValueError):
            state.assign(Edge(1, 2), 5)

    def test_non_contiguous_partition_ids(self):
        state = FastPartitionState([7, 3, 11])
        state.assign(Edge(1, 2), 3)
        assert state.replicas(1) == frozenset({3})
        assert state.size(3) == 1
        assert state.partition_edges == {7: 0, 3: 1, 11: 0}

    def test_vertex_table_growth(self):
        state = FastPartitionState(range(4))
        for i in range(3000):
            state.assign(Edge(2 * i, 2 * i + 1), i % 4)
        assert state.assigned_edges == 3000
        assert state.total_replicas() == 6000
        assert state.replica_vector(0).any()

    def test_replica_vector_unseen_vertex_is_zero(self):
        state = FastPartitionState(range(4))
        assert not state.replica_vector(99).any()

    def test_replica_hits_counts_neighborhood(self):
        state = FastPartitionState(range(3))
        state.assign(Edge(1, 2), 0)
        state.assign(Edge(3, 4), 1)
        hits = state.replica_hits([1, 3, 99])
        assert list(hits) == [1, 1, 0]

    def test_copy_degrees_between_state_kinds(self):
        legacy = PartitionState(range(2))
        legacy.observe_degrees(Edge(1, 2))
        legacy.observe_degrees(Edge(1, 3))
        fast = FastPartitionState(range(2))
        fast.copy_degrees_from(legacy)
        assert fast.degree_of(1) == 2
        assert fast.max_degree == legacy.max_degree
        # And back: a legacy state can adopt a fast state's table.
        other = PartitionState(range(2))
        other.copy_degrees_from(fast)
        assert other.degree_of(1) == 2

    def test_validate_result_accepts_fast_state(self):
        partitioner = HDRFPartitioner(range(4), fast=True)
        edges = [Edge(i, i + 1) for i in range(40)]
        result = partitioner.partition_stream(InMemoryEdgeStream(edges))
        report = validate_result(result)
        assert report.ok, report.problems


class TestFastFlagWiring:
    def test_fast_flag_selects_fast_state(self):
        assert isinstance(HDRFPartitioner(range(2), fast=True).state,
                          FastPartitionState)
        assert isinstance(HDRFPartitioner(range(2)).state, PartitionState)

    def test_explicit_state_wins_over_flag(self):
        state = PartitionState(range(2))
        partitioner = HDRFPartitioner(range(2), state=state, fast=True)
        assert partitioner.state is state

    def test_adwise_select_partition_caches_scoring(self):
        partitioner = AdwisePartitioner(range(4), fast=True)
        partitioner.partition_edge(Edge(1, 2))
        scoring = partitioner._edge_scoring
        assert scoring is not None
        partitioner.partition_edge(Edge(2, 3))
        assert partitioner._edge_scoring is scoring

    def test_adwise_scoring_cache_follows_state_swap(self):
        """Batch drivers reassign .state/.clock between batches (hovercut
        policy pattern); the cached scoring must track the live state."""
        partitioner = AdwisePartitioner(range(4))
        partitioner.partition_edge(Edge(1, 2))
        partitioner.state = PartitionState(range(4))
        partitioner.clock = SimulatedClock()
        partitioner.partition_edge(Edge(3, 4))
        assert partitioner._edge_scoring.state is partitioner.state
        assert partitioner._edge_scoring.clock is partitioner.clock
        # The swapped-in clock was actually charged.
        assert partitioner.clock.score_computations > 0

    def test_simulated_clock_batch_equals_singles(self):
        batched = SimulatedClock()
        singles = SimulatedClock()
        batched.charge_score(17)
        for _ in range(17):
            singles.charge_score()
        assert batched.now() == singles.now()
