"""Unit tests for the clock abstractions."""

import pytest

from repro.simtime import SimulatedClock, WallClock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_charge_score_advances(self):
        clock = SimulatedClock(score_cost_ms=0.5)
        clock.charge_score()
        assert clock.now() == pytest.approx(0.5)
        assert clock.score_computations == 1

    def test_charge_score_batch(self):
        clock = SimulatedClock(score_cost_ms=0.1)
        clock.charge_score(10)
        assert clock.now() == pytest.approx(1.0)
        assert clock.score_computations == 10

    def test_charge_assignment(self):
        clock = SimulatedClock(assignment_cost_ms=0.2)
        clock.charge_assignment(3)
        assert clock.now() == pytest.approx(0.6)
        assert clock.assignments == 3

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        assert clock.now() == 10.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(score_cost_ms=-0.1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge_score(5)
        clock.charge_assignment(2)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.score_computations == 0
        assert clock.assignments == 0

    def test_monotone(self):
        clock = SimulatedClock()
        t0 = clock.now()
        clock.charge_score()
        assert clock.now() >= t0


class TestWallClock:
    def test_now_advances(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first >= 0.0

    def test_counts_events_without_time_charge(self):
        clock = WallClock()
        clock.charge_score(4)
        clock.charge_assignment(2)
        assert clock.score_computations == 4
        assert clock.assignments == 2
