"""Property-based tests (hypothesis) for core data structures and invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Edge, Graph
from repro.graph.stream import InMemoryEdgeStream, chunk_stream, locally_shuffled
from repro.core.adwise import AdwisePartitioner
from repro.core.scoring import LAMBDA_MAX, LAMBDA_MIN, AdaptiveBalancer
from repro.core.spotlight import spotlight_spreads
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.metrics import (
    imbalance,
    partition_sizes,
    replica_sets_from_assignments,
    replication_degree,
)
from repro.partitioning.state import PartitionState
from repro.util import stable_hash


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)).filter(
        lambda t: t[0] != t[1]),
    min_size=1, max_size=120)


def to_edges(pairs):
    return [Edge(u, v).canonical() for u, v in pairs]


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------

@given(edge_lists)
def test_graph_edge_count_matches_iteration(pairs):
    graph = Graph(pairs)
    assert graph.num_edges == len(list(graph.edges()))


@given(edge_lists)
def test_graph_degree_sum_is_twice_edges(pairs):
    graph = Graph(pairs)
    assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges


@given(edge_lists)
def test_graph_neighbors_symmetric(pairs):
    graph = Graph(pairs)
    for v in graph.vertices():
        for n in graph.neighbors(v):
            assert v in graph.neighbors(n)


# ---------------------------------------------------------------------------
# Stream invariants
# ---------------------------------------------------------------------------

@given(edge_lists, st.integers(1, 7))
def test_chunking_preserves_edge_multiset(pairs, num_chunks):
    edges = to_edges(pairs)
    chunks = chunk_stream(InMemoryEdgeStream(edges), num_chunks)
    merged = [e for chunk in chunks for e in chunk]
    assert sorted(merged) == sorted(edges)
    assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1


@given(edge_lists, st.integers(1, 64), st.integers(0, 5))
def test_local_shuffle_preserves_edge_multiset(pairs, buffer_size, seed):
    edges = to_edges(pairs)
    stream = locally_shuffled(edges, buffer_size=buffer_size, seed=seed)
    assert sorted(stream) == sorted(edges)


# ---------------------------------------------------------------------------
# Partitioning invariants — hold for EVERY partitioner on EVERY input
# ---------------------------------------------------------------------------

@given(edge_lists, st.integers(1, 8))
@settings(deadline=None)
def test_hash_partitioner_invariants(pairs, k):
    edges = to_edges(pairs)
    result = HashPartitioner(range(k)).partition_stream(
        InMemoryEdgeStream(edges))
    _check_partitioning_invariants(result, edges, k)


@given(edge_lists, st.integers(1, 8))
@settings(deadline=None)
def test_hdrf_partitioner_invariants(pairs, k):
    edges = to_edges(pairs)
    result = HDRFPartitioner(range(k)).partition_stream(
        InMemoryEdgeStream(edges))
    _check_partitioning_invariants(result, edges, k)


@given(edge_lists, st.integers(1, 6), st.integers(1, 16))
@settings(deadline=None, max_examples=25)
def test_adwise_partitioner_invariants(pairs, k, window):
    edges = to_edges(pairs)
    result = AdwisePartitioner(
        range(k), fixed_window=window).partition_stream(
        InMemoryEdgeStream(edges))
    _check_partitioning_invariants(result, edges, k)


def _check_partitioning_invariants(result, edges, k):
    # Every edge assigned, to a valid partition.
    assert result.state.assigned_edges == len(edges)
    assert all(0 <= p < k for p in result.assignments.values())
    # Partition sizes sum to the number of edges.
    assert sum(result.state.partition_edges.values()) == len(edges)
    # Replica sets: each vertex replicated on >= 1 and <= k partitions,
    # and each endpoint's replica set contains the edge's partition.
    for edge, partition in result.assignments.items():
        assert partition in result.state.replicas(edge.u)
        assert partition in result.state.replicas(edge.v)
    for reps in result.state.replica_sets.values():
        assert 1 <= len(reps) <= k
    # Replication degree within the possible envelope.
    assert 1.0 <= result.replication_degree <= k
    # Incremental max/min agree with brute force.
    assert result.state.max_size == max(result.state.partition_edges.values())
    assert result.state.min_size == min(result.state.partition_edges.values())


@given(edge_lists, st.integers(1, 8))
@settings(deadline=None)
def test_replication_degree_from_assignments_matches_state(pairs, k):
    edges = to_edges(pairs)
    result = HDRFPartitioner(range(k)).partition_stream(
        InMemoryEdgeStream(edges))
    replicas = replica_sets_from_assignments(result.assignments)
    # The state counts duplicate stream edges too; with deduplicated
    # canonical edges both views must agree on the replica sets.
    for vertex, reps in replicas.items():
        assert reps == set(result.state.replicas(vertex))


# ---------------------------------------------------------------------------
# Adaptive balancing invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(0, 1), st.integers(0, 1000)),
                min_size=1, max_size=200),
       st.integers(1, 1000))
def test_lambda_always_within_bounds(updates, total):
    balancer = AdaptiveBalancer(total_edges=total)
    for imb, assigned in updates:
        value = balancer.update(imb, assigned)
        assert LAMBDA_MIN <= value <= LAMBDA_MAX


# ---------------------------------------------------------------------------
# Spotlight invariants
# ---------------------------------------------------------------------------

@given(st.integers(1, 64), st.integers(1, 8), st.data())
def test_spotlight_always_covers_all_partitions(k, z, data):
    import math
    min_spread = math.ceil(k / z)
    spread = data.draw(st.integers(min_spread, k))
    spreads = spotlight_spreads(list(range(k)), z, spread)
    assert len(spreads) == z
    covered = {p for ids in spreads for p in ids}
    assert covered == set(range(k))
    for ids in spreads:
        assert len(ids) == len(set(ids)) == spread


# ---------------------------------------------------------------------------
# Metrics invariants
# ---------------------------------------------------------------------------

@given(st.dictionaries(st.integers(0, 30), st.integers(0, 100),
                       min_size=1, max_size=16))
def test_imbalance_bounded(sizes):
    value = imbalance(sizes)
    assert 0.0 <= value <= 1.0


@given(edge_lists, st.integers(1, 8))
def test_partition_sizes_total(pairs, k):
    edges = to_edges(pairs)
    assignments = {e: stable_hash(i) % k for i, e in enumerate(edges)}
    sizes = partition_sizes(assignments, range(k))
    assert sum(sizes.values()) == len(assignments)


# ---------------------------------------------------------------------------
# PartitionState stress
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30),
                          st.integers(0, 7)), min_size=1, max_size=300))
def test_state_incremental_sizes_match_bruteforce(ops):
    state = PartitionState(list(range(8)))
    for u, v, p in ops:
        if u == v:
            continue
        state.assign(Edge(u, v).canonical(), p)
        assert state.max_size == max(state.partition_edges.values())
        assert state.min_size == min(state.partition_edges.values())
        assert 0.0 <= state.imbalance() <= 1.0
