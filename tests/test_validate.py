"""Tests for partitioning validation."""

import pytest

from repro.graph.graph import Edge
from repro.graph.stream import shuffled
from repro.partitioning.base import PartitionResult
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.state import PartitionState
from repro.partitioning.validate import validate_result


def valid_result(small_powerlaw):
    stream = shuffled(small_powerlaw.edges(), seed=3)
    return HDRFPartitioner(range(4)).partition_stream(stream)


class TestValidResults:
    def test_real_partitioning_validates(self, small_powerlaw):
        report = validate_result(valid_result(small_powerlaw))
        assert report.ok
        report.raise_if_invalid()  # no exception

    def test_expected_edges_checked(self, small_powerlaw):
        result = valid_result(small_powerlaw)
        good = validate_result(result,
                               expected_edges=result.state.assigned_edges)
        assert good.ok
        bad = validate_result(result, expected_edges=1)
        assert not bad.ok

    def test_balance_constraint(self, small_powerlaw):
        result = valid_result(small_powerlaw)
        # HDRF keeps balance far above tau = 0.5.
        assert validate_result(result, tau=0.5).ok
        # An impossible tau must fail.
        assert not validate_result(result, tau=1.0).ok


class TestCorruptedResults:
    def test_unknown_partition_detected(self):
        state = PartitionState([0, 1])
        state.assign(Edge(1, 2), 0)
        result = PartitionResult("x", state, {Edge(1, 2): 9},
                                 latency_ms=1.0)
        report = validate_result(result)
        assert any("unknown partition" in e for e in report.errors)

    def test_inconsistent_replicas_detected(self):
        state = PartitionState([0, 1])
        state.assign(Edge(1, 2), 0)
        # Claim the edge went to partition 1 although state says 0.
        result = PartitionResult("x", state, {Edge(1, 2): 1},
                                 latency_ms=1.0)
        report = validate_result(result)
        assert not report.ok

    def test_size_accounting_mismatch(self):
        state = PartitionState([0])
        state.assign(Edge(1, 2), 0)
        state.partition_edges[0] = 5  # corrupt the books
        result = PartitionResult("x", state, {Edge(1, 2): 0},
                                 latency_ms=1.0)
        report = validate_result(result)
        assert any("sum to" in e for e in report.errors)

    def test_negative_latency_detected(self):
        state = PartitionState([0])
        state.assign(Edge(1, 2), 0)
        result = PartitionResult("x", state, {Edge(1, 2): 0},
                                 latency_ms=-1.0)
        assert not validate_result(result).ok

    def test_raise_if_invalid(self):
        state = PartitionState([0])
        result = PartitionResult("x", state, {Edge(1, 2): 9},
                                 latency_ms=0.0)
        with pytest.raises(AssertionError, match="invalid partitioning"):
            validate_result(result).raise_if_invalid()

    def test_empty_partition_warning(self, small_powerlaw):
        stream = shuffled(small_powerlaw.edges(), seed=3)
        # Force everything onto partition 0 of 4 via a degenerate state.
        state = PartitionState([0, 1, 2, 3])
        assignments = {}
        for edge in stream:
            canon = edge.canonical()
            state.observe_degrees(canon)
            state.assign(canon, 0)
            assignments[canon] = 0
        result = PartitionResult("x", state, assignments, latency_ms=0.0)
        report = validate_result(result)
        assert any("empty partitions" in w for w in report.warnings)
