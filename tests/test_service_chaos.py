"""Chaos suite: the daemon dies at every WAL/snapshot/ack boundary and
the stream must still come out exactly-once, bit-identical.

Three layers of attack:

* **Scheduled crashes** — a :class:`FaultSchedule` kills the daemon at
  each :data:`SERVICE_INJECTION_POINTS` boundary (torn WAL writes
  included); a supervisor reboots it over the same ``wal_dir`` and the
  self-healing client reconnects and resends.  The final assignments
  must equal an uninterrupted local run, with no batch lost or applied
  twice — including under a hypothesis-random schedule of crashes.
* **Network chaos** — a :class:`FlakyProxy` severs and delays client
  connections mid-stream without touching the daemon; idempotent seqs
  make the resends exactly-once.
* **A real ``kill -9``** — the CLI daemon as a subprocess, SIGKILL'd
  and restarted over its ``--wal-dir``, resumes bit-identically.
"""

import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _service_utils import FaultSchedule, FlakyProxy, SupervisedDaemon
from repro.partitioning.hdrf import HDRFPartitioner
from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceTimeout,
)
from repro.service.wal import SERVICE_INJECTION_POINTS
from test_service import EDGES, _expected_triples, _reference

#: 12 batches of 30 edges — enough to cross two compaction boundaries
#: at wal_compact_every=4 while keeping each crash cycle fast.
CHAOS_EDGES = EDGES[:360]
BATCH = 30
NUM_BATCHES = len(CHAOS_EDGES) // BATCH
REFERENCE = _expected_triples(_reference(HDRFPartitioner, 4, CHAOS_EDGES))


def _client(port):
    return ServiceClient(port=port, timeout=10.0, max_retries=8,
                         retry_base=0.05, seed=3)


def _finalize(client, tenant):
    """Finalize, tolerating a connection that dies under a crash that
    raced the last ack: the daemon provably had not started processing
    the finalize (no injection point lives inside it), so retrying
    after the supervisor restart is safe."""
    for _ in range(5):
        try:
            return client.finalize(tenant)
        except ServiceConnectionError:
            time.sleep(0.1)
    return client.finalize(tenant)


def _run_stream(port, edges=CHAOS_EDGES, batch=BATCH, tenant="t"):
    """Open + ingest + finalize one tenant; assert exactly-once."""
    with _client(port) as client:
        client.open(tenant, algorithm="hdrf", partitions=4)
        sent = 0
        for start in range(0, len(edges), batch):
            client.ingest(tenant, edges[start:start + batch])
            sent += len(edges[start:start + batch])
        # A lost batch would undershoot, a double-applied one overshoot.
        assert client.stats(tenant)["session"]["edges_ingested"] == sent
        return _finalize(client, tenant)


class TestScheduledCrashes:
    #: Kill seq per point: compaction boundaries only fire at applied
    #: seqs that are multiples of wal_compact_every=4.
    KILL_SEQ = {"pre-compact": 8, "mid-compact": 8, "post-compact": 8}

    @pytest.mark.parametrize("point", SERVICE_INJECTION_POINTS)
    def test_crash_at_every_boundary(self, point, tmp_path):
        seq = self.KILL_SEQ.get(point, 6)
        schedule = FaultSchedule([(point, seq)])
        daemon = SupervisedDaemon(wal_dir=str(tmp_path / "wal"),
                                  wal_compact_every=4,
                                  fault_hook=schedule)
        port = daemon.start()
        try:
            final = _run_stream(port)
        finally:
            daemon.shutdown()
        assert daemon.error is None
        assert schedule.fired == [(point, seq)]  # the crash did happen
        assert daemon.boots == 2  # and the supervisor rebooted once
        assert final["assignments"] == REFERENCE

    def test_repeated_crashes_one_stream(self, tmp_path):
        """Three crashes at different boundaries within one stream.
        (Recovery compacts at the recovered seq, so after the pre-ack
        crash at 6 the next compaction boundary is 10.)"""
        schedule = FaultSchedule([("wal-post-append", 3),
                                  ("pre-ack", 6),
                                  ("mid-compact", 10)])
        daemon = SupervisedDaemon(wal_dir=str(tmp_path / "wal"),
                                  wal_compact_every=4,
                                  fault_hook=schedule)
        port = daemon.start()
        try:
            final = _run_stream(port)
        finally:
            daemon.shutdown()
        assert daemon.error is None
        assert len(schedule.fired) == 3
        assert daemon.boots == 4
        assert final["assignments"] == REFERENCE

    def test_crash_spares_other_tenants(self, tmp_path):
        """Recovery restores *every* tenant, not just the one whose
        batch triggered the crash."""
        schedule = FaultSchedule([("pre-ack", 4)])
        daemon = SupervisedDaemon(wal_dir=str(tmp_path / "wal"),
                                  wal_compact_every=4,
                                  fault_hook=schedule)
        port = daemon.start()
        try:
            with _client(port) as client:
                client.open("bystander", algorithm="dbh", partitions=4)
                for start in range(0, 120, BATCH):
                    client.ingest("bystander",
                                  CHAOS_EDGES[start:start + BATCH])
            final = _run_stream(port)  # crashes at its 4th batch
            with _client(port) as client:
                assert client.resume_seq("bystander") == 4
                stats = client.stats("bystander")
                assert stats["session"]["edges_ingested"] == 120
                _finalize(client, "bystander")
        finally:
            daemon.shutdown()
        assert final["assignments"] == REFERENCE

    @given(kills=st.lists(
        st.tuples(st.sampled_from(SERVICE_INJECTION_POINTS),
                  st.integers(min_value=1, max_value=NUM_BATCHES)),
        max_size=3, unique=True))
    @settings(max_examples=8, deadline=None)
    def test_random_crash_schedule(self, kills):
        """The exactly-once bar holds for *any* crash schedule, not
        just the hand-picked boundaries above."""
        workdir = tempfile.mkdtemp(prefix="service-chaos-")
        schedule = FaultSchedule(kills)
        daemon = SupervisedDaemon(wal_dir=os.path.join(workdir, "wal"),
                                  wal_compact_every=4,
                                  fault_hook=schedule)
        try:
            port = daemon.start()
            final = _run_stream(port)
            assert daemon.error is None
            assert final["assignments"] == REFERENCE
        finally:
            daemon.shutdown()
            shutil.rmtree(workdir, ignore_errors=True)


class TestNetworkChaos:
    def test_client_survives_drops_and_delay(self, tmp_path):
        """Connections severed mid-stream (and slowed) between client
        and daemon: the client reconnects, resends, and the seq replay
        keeps every batch exactly-once."""
        daemon = SupervisedDaemon(wal_dir=str(tmp_path / "wal"),
                                  wal_compact_every=8)
        port = daemon.start()
        proxy = FlakyProxy(port, drops=3, drop_after_bytes=3000,
                           delay=0.001)
        try:
            final = _run_stream(proxy.port, edges=EDGES, batch=40)
            assert proxy.connections >= 4  # the drops really happened
        finally:
            proxy.close()
            daemon.shutdown()
        assert final["assignments"] == _expected_triples(
            _reference(HDRFPartitioner, 4, EDGES))

    def test_timeout_is_typed(self):
        """A daemon that never answers surfaces ServiceTimeout (not a
        raw socket.timeout), and the abandoned id does not leak."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        stop = threading.Event()

        def mute_server():
            conn, _ = listener.accept()
            stop.wait(5)
            conn.close()

        thread = threading.Thread(target=mute_server, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=port, timeout=0.3, max_retries=0)
            with pytest.raises(ServiceTimeout):
                client.ping()
            assert client._pending == {}  # abandoned, not leaked
            client.close()
        finally:
            stop.set()
            listener.close()

    def test_connect_failure_is_typed(self):
        """Nothing listening: ServiceConnectionError after the retry
        budget, not a raw ConnectionRefusedError."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        with pytest.raises(ServiceConnectionError, match="could not"):
            ServiceClient(port=free_port, max_retries=1,
                          retry_base=0.01)


class TestRealSigkill:
    def test_kill_dash_nine_restart_resumes(self, tmp_path):
        """The README quickstart, as a test: CLI daemon, kill -9,
        restart over the same --wal-dir, resumed parity."""
        wal_dir = str(tmp_path / "wal")
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + \
            env.get("PYTHONPATH", "")

        def spawn():
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--port", "0", "--wal-dir", wal_dir,
                 "--wal-compact-every", "4"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                env=env, text=True)
            line = proc.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", line)
            assert match, f"unexpected announce line: {line!r}"
            return proc, int(match.group(1))

        cut = 6 * BATCH
        proc, port = spawn()
        try:
            with _client(port) as client:
                client.open("t", algorithm="hdrf", partitions=4)
                for start in range(0, cut, BATCH):
                    client.ingest("t", CHAOS_EDGES[start:start + BATCH])
            os.kill(proc.pid, signal.SIGKILL)  # the real thing
            proc.wait(timeout=10)
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()

        proc2, port2 = spawn()
        try:
            with _client(port2) as client:
                assert client.resume_seq("t") == cut // BATCH
                for start in range(cut, len(CHAOS_EDGES), BATCH):
                    client.ingest("t", CHAOS_EDGES[start:start + BATCH])
                final = client.finalize("t")
                client.shutdown()
            proc2.wait(timeout=10)
        finally:
            proc2.stdout.close()
            if proc2.poll() is None:
                proc2.kill()
        assert final["assignments"] == REFERENCE
