"""Differential layer: sharded cluster execution ≡ single-process engine.

Three equivalences, across partitioners × algorithms × shard counts:

* ``ClusterEngine`` (serial backend) must reproduce
  ``Engine(mode="dense")`` — and therefore ``Engine(mode="object")``,
  which the dense differential layer already pins — exactly: identical
  states (bit-exact for integer-state programs, ``allclose`` for float),
  supersteps, message counts, convergence, aggregates and simulated
  cost traces.
* The ``process`` backend (real worker OS processes over pipes) must be
  *bit-identical* to the serial backend — the sync combine order is
  fixed — and equivalent to the engine.
* Every syncing superstep's **measured** remote/local sync-message
  counts per machine must equal the :class:`PlacementStats` prediction
  exactly, for any machine layout — the cost model's central assumption,
  held as an invariant.

Programs outside the sharding contract must transparently run on the
unsharded fallback path with identical results.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster import ClusterEngine
from repro.engine.algorithms import (
    ConnectedComponents,
    GreedyColoring,
    KCore,
    LabelPropagation,
    PageRank,
    SingleSourceShortestPaths,
)
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.graph.generators import (
    barabasi_albert_graph,
    powerlaw_cluster_graph,
)
from repro.graph.graph import Graph
from repro.graph.shard import ShardedGraph
from repro.graph.stream import shuffled
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hashing import HashPartitioner


def graph_cases():
    isolated = Graph([(0, 1), (2, 3)])
    isolated.add_vertex(77)
    return {
        "isolated": isolated,
        "triangle": Graph([(0, 1), (1, 2), (0, 2)]),
        "star": Graph([(0, i) for i in range(1, 8)]),
        "path": Graph([(i, i + 1) for i in range(6)]),
        "powerlaw": barabasi_albert_graph(n=180, m=3, seed=13),
        "clustered": powerlaw_cluster_graph(n=150, m=3, p=0.8, seed=5),
    }


def program_cases():
    return {
        "pagerank": (lambda: PageRank(iterations=9), True),
        "components": (lambda: ConnectedComponents(), False),
        "sssp": (lambda: SingleSourceShortestPaths(source=0), True),
        "kcore": (lambda: KCore(k=3), False),
    }


def partitioner_cases():
    return {
        "hash": lambda parts: HashPartitioner(parts),
        "hdrf": lambda parts: HDRFPartitioner(parts),
    }


def shard_graph(graph: Graph, partitioner_name: str, k: int):
    """(assignments, ShardedGraph) for ``graph`` under one partitioner."""
    factory = partitioner_cases()[partitioner_name]
    edges = list(graph.edges())
    if edges:
        result = factory(list(range(k))).partition_stream(
            shuffled(edges, seed=3))
        assignments = result.assignments
    else:
        assignments = {}
    sharded = ShardedGraph.from_assignments(
        assignments, partitions=range(k), vertices=graph.vertices())
    return assignments, sharded


def assert_cluster_matches(engine_report, cluster_report, float_state):
    assert cluster_report.algorithm == engine_report.algorithm
    assert cluster_report.supersteps == engine_report.supersteps
    assert cluster_report.messages_sent == engine_report.messages_sent
    assert cluster_report.converged == engine_report.converged
    assert cluster_report.aggregates == engine_report.aggregates
    assert cluster_report.latency_ms == pytest.approx(
        engine_report.latency_ms)
    assert ([c.total_ms for c in cluster_report.superstep_costs]
            == pytest.approx(
                [c.total_ms for c in engine_report.superstep_costs]))
    assert set(cluster_report.states) == set(engine_report.states)
    for vertex, expected in engine_report.states.items():
        got = cluster_report.states[vertex]
        if float_state:
            if isinstance(expected, float) and math.isinf(expected):
                assert math.isinf(got)
            else:
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)
        else:
            assert got == expected


def assert_sync_matches_prediction(cluster_report, placement: Placement):
    """Measured sync traffic of every syncing superstep == prediction."""
    stats = placement.stats()
    synced = [t for t in cluster_report.telemetry if t.synced]
    for telemetry in synced:
        for machine, predicted in stats.remote_sync_per_machine.items():
            assert telemetry.remote_per_machine.get(machine, 0) == predicted
        for machine, predicted in stats.local_sync_per_machine.items():
            assert telemetry.local_per_machine.get(machine, 0) == predicted
    unsynced = [t for t in cluster_report.telemetry if not t.synced]
    for telemetry in unsynced:
        assert telemetry.remote_messages == 0
        assert telemetry.local_messages == 0


class TestSerialDifferential:
    """Serial backend vs Engine(mode="dense"), full cross-product."""

    @pytest.mark.parametrize("graph_name", sorted(graph_cases()))
    @pytest.mark.parametrize("program_name", sorted(program_cases()))
    @pytest.mark.parametrize("partitioner_name",
                             sorted(partitioner_cases()))
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_matches_dense_engine(self, graph_name, program_name,
                                  partitioner_name, k):
        graph = graph_cases()[graph_name]
        factory, float_state = program_cases()[program_name]
        assignments, sharded = shard_graph(graph, partitioner_name, k)
        machines = max(1, k // 2)
        cluster = ClusterEngine(sharded, backend="serial",
                                num_machines=machines)
        engine_report = Engine(graph, cluster.placement,
                               mode="dense").run(factory(),
                                                 max_supersteps=60)
        cluster_report = cluster.run(factory(), max_supersteps=60)
        assert cluster_report.sharded
        assert cluster_report.num_shards == k
        assert_cluster_matches(engine_report, cluster_report, float_state)
        assert_sync_matches_prediction(cluster_report, cluster.placement)

    def test_matches_object_engine(self):
        """Close the triangle explicitly: cluster ≡ object interpreter."""
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hdrf", 4)
        cluster = ClusterEngine(sharded, backend="serial")
        object_report = Engine(graph, cluster.placement,
                               mode="object").run(ConnectedComponents(),
                                                  max_supersteps=60)
        cluster_report = cluster.run(ConnectedComponents(),
                                     max_supersteps=60)
        assert_cluster_matches(object_report, cluster_report,
                               float_state=False)


class TestProcessDifferential:
    """Process backend: real workers, pipes, and measured remote traffic."""

    @pytest.mark.parametrize("program_name", ["pagerank", "components"])
    @pytest.mark.parametrize("k,workers", [(2, 2), (4, 4), (8, 2), (8, 4)])
    def test_matches_dense_engine(self, program_name, k, workers):
        graph = graph_cases()["powerlaw"]
        factory, float_state = program_cases()[program_name]
        _, sharded = shard_graph(graph, "hdrf", k)
        cluster = ClusterEngine(sharded, backend="process",
                                num_workers=workers)
        engine_report = Engine(graph, cluster.placement,
                               mode="dense").run(factory(),
                                                 max_supersteps=60)
        cluster_report = cluster.run(factory(), max_supersteps=60)
        assert cluster_report.backend == "process"
        assert cluster_report.num_machines == workers
        assert_cluster_matches(engine_report, cluster_report, float_state)
        assert_sync_matches_prediction(cluster_report, cluster.placement)

    def test_bit_identical_to_serial(self):
        """Fixed combine association: process ≡ serial bit-for-bit,
        including float states."""
        graph = graph_cases()["clustered"]
        _, sharded = shard_graph(graph, "hash", 8)
        process = ClusterEngine(sharded, backend="process", num_workers=4)
        serial = ClusterEngine(sharded, backend="serial", num_machines=4,
                               machine_of_partition=process.machine_of)
        process_report = process.run(PageRank(iterations=6),
                                     max_supersteps=40)
        serial_report = serial.run(PageRank(iterations=6),
                                   max_supersteps=40)
        assert process_report.states == serial_report.states
        assert process_report.messages_sent == serial_report.messages_sent
        assert ([(t.remote_messages, t.local_messages)
                 for t in process_report.telemetry]
                == [(t.remote_messages, t.local_messages)
                    for t in serial_report.telemetry])

    def test_one_worker_per_partition_all_remote(self):
        """Default deployment: every partition its own worker; all sync
        traffic crosses a process boundary."""
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hash", 4)
        cluster = ClusterEngine(sharded, backend="process", num_workers=4)
        report = cluster.run(ConnectedComponents(), max_supersteps=60)
        assert report.local_sync_messages == 0
        assert report.remote_sync_messages > 0
        assert_sync_matches_prediction(report, cluster.placement)


class TestFallback:
    """Programs outside the sharding contract run unsharded, same result."""

    @pytest.mark.parametrize("factory", [
        lambda: LabelPropagation(max_iterations=10),
        lambda: GreedyColoring(max_iterations=20),
    ])
    def test_fallback_matches_engine(self, factory):
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hash", 4)
        cluster = ClusterEngine(sharded, backend="serial")
        engine_report = Engine(graph, cluster.placement,
                               mode="dense").run(factory(),
                                                 max_supersteps=60)
        report = cluster.run(factory(), max_supersteps=60)
        assert not report.sharded
        assert report.telemetry == []
        assert report.wall_ms_total > 0.0
        assert_cluster_matches(engine_report, report, float_state=False)


class TestTelemetryAndGuards:
    def test_telemetry_shape(self):
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hdrf", 4)
        cluster = ClusterEngine(sharded, backend="serial")
        report = cluster.run(PageRank(iterations=5), max_supersteps=40)
        assert len(report.telemetry) == report.supersteps
        for telemetry in report.telemetry:
            assert telemetry.wall_ms >= telemetry.compute_ms >= 0.0
            assert 0.0 < telemetry.active_fraction <= 1.0
        # PageRank syncs every superstep except the final halt step.
        assert [t.synced for t in report.telemetry] == [True] * 5 + [False]
        assert report.wall_ms_total == pytest.approx(
            sum(t.wall_ms for t in report.telemetry))
        assert report.sync_payload_bytes > 0

    def test_cost_trace_uses_machine_map(self):
        """Grouping partitions onto one machine turns remote traffic
        local — measured and predicted alike."""
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hash", 4)
        one = ClusterEngine(sharded, backend="serial", num_machines=1)
        four = ClusterEngine(sharded, backend="serial", num_machines=4)
        report_one = one.run(ConnectedComponents(), max_supersteps=60)
        report_four = four.run(ConnectedComponents(), max_supersteps=60)
        assert report_one.remote_sync_messages == 0
        assert report_one.local_sync_messages == \
            report_four.remote_sync_messages + report_four.local_sync_messages
        assert_sync_matches_prediction(report_one, one.placement)
        assert_sync_matches_prediction(report_four, four.placement)

    def test_custom_machine_map(self):
        graph = graph_cases()["powerlaw"]
        _, sharded = shard_graph(graph, "hash", 4)
        machine_of = {0: 1, 1: 0, 2: 1, 3: 0}
        cluster = ClusterEngine(sharded, backend="serial",
                                machine_of_partition=machine_of)
        assert cluster.num_machines == 2
        report = cluster.run(ConnectedComponents(), max_supersteps=60)
        assert_sync_matches_prediction(report, cluster.placement)

    def test_rejects_bad_configuration(self):
        _, sharded = shard_graph(graph_cases()["triangle"], "hash", 2)
        with pytest.raises(ValueError):
            ClusterEngine(sharded, backend="bogus")
        with pytest.raises(ValueError):
            ClusterEngine(sharded, backend="serial", num_workers=2)
        with pytest.raises(ValueError):
            ClusterEngine(sharded, backend="process", num_workers=0)
        with pytest.raises(ValueError):
            ClusterEngine(sharded, backend="process", num_machines=2)
        with pytest.raises(ValueError):
            ClusterEngine(sharded, backend="serial",
                          machine_of_partition={0: 0})  # partition 1 missing
        with pytest.raises(ValueError):
            ClusterEngine(sharded).run(PageRank(iterations=1),
                                       max_supersteps=0)

    def test_single_partition_no_sync(self):
        graph = graph_cases()["triangle"]
        _, sharded = shard_graph(graph, "hash", 1)
        cluster = ClusterEngine(sharded, backend="serial")
        report = cluster.run(ConnectedComponents(), max_supersteps=60)
        assert report.remote_sync_messages == 0
        assert report.local_sync_messages == 0
        engine_report = Engine(graph, cluster.placement,
                               mode="dense").run(ConnectedComponents(),
                                                 max_supersteps=60)
        assert_cluster_matches(engine_report, report, float_state=False)
