"""Tests for METIS adjacency-format IO."""

import pytest

from repro.graph.graph import Graph
from repro.graph.metis import read_metis, write_metis


class TestRoundTrip:
    def test_triangle_round_trip(self, tmp_path, triangle):
        path = tmp_path / "g.metis"
        write_metis(path, triangle)
        loaded = read_metis(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 3

    def test_structure_preserved_up_to_renumbering(self, tmp_path):
        graph = Graph([(10, 20), (20, 30), (10, 30), (30, 40)])
        path = tmp_path / "g.metis"
        write_metis(path, graph)
        loaded = read_metis(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        # Degree multiset is invariant under renumbering.
        original = sorted(graph.degree(v) for v in graph.vertices())
        reloaded = sorted(loaded.degree(v) for v in loaded.vertices())
        assert original == reloaded

    def test_isolated_vertices_kept(self, tmp_path):
        graph = Graph([(0, 1)])
        graph.add_vertex(5)
        path = tmp_path / "g.metis"
        write_metis(path, graph)
        loaded = read_metis(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 1

    def test_random_graph_round_trip(self, tmp_path, small_powerlaw):
        path = tmp_path / "g.metis"
        write_metis(path, small_powerlaw)
        loaded = read_metis(path)
        assert loaded.num_edges == small_powerlaw.num_edges
        assert loaded.num_vertices == small_powerlaw.num_vertices


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_vertex_count_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("3 1\n2\n1\n")  # promises 3 vertices, has 2 lines
        with pytest.raises(ValueError):
            read_metis(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 5\n2\n1\n")  # one edge, header says five
        with pytest.raises(ValueError):
            read_metis(path)

    def test_neighbor_out_of_range(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(ValueError):
            read_metis(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "g.metis"
        path.write_text("% comment\n2 1\n2\n1\n")
        loaded = read_metis(path)
        assert loaded.num_edges == 1
