"""The k-best agenda must equal the scan agenda and the object window.

The lazy agenda (DESIGN.md §14) is only admissible because every backend
and every agenda strategy produces *bit-identical* traversals: same pop
order, same scores, same promotions, same simulated clock.  This module
enforces that contract three ways:

* differential runs — heap agenda vs. scan agenda vs. the object
  :class:`EdgeWindow`, across lazy/eager, fixed/adaptive windows and
  duplicate-heavy streams, repeated for every kernel backend that can
  build on this machine (``cc``, ``numba`` when importable, ``numpy``,
  ``pyloop``);
* heap property tests — random push/remove/restamp interleavings keep
  the indexed binary max-heap's shape, order and position-index
  invariants, both for the looped-Python source directly and for the
  compiled backends through a live window;
* backend parity — the numpy fallback equals each native backend on the
  same stream (the CI numba leg runs this with numba installed), and
  the ``REPRO_KERNEL`` / ``REPRO_NUMBA`` switches resolve as documented.
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import _kernels
from repro.core import _kernels_py as kp
from repro.core.adwise import AdwisePartitioner
from repro.core.array_window import ArrayEdgeWindow
from repro.core.scoring import AdwiseScoring
from repro.core.window import EdgeWindow
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.partitioning.fast_state import FastPartitionState


def _available_backends():
    names = []
    if _kernels._build_cc()[1] is not None:
        names.append("cc")
    if _kernels._build_numba():
        names.append("numba")
    names += ["numpy", "pyloop"]
    return names


BACKENDS = _available_backends()
NATIVE = [name for name in BACKENDS if name in ("cc", "numba")]


@contextmanager
def forced_backend(name):
    saved = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = name
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved


# ---------------------------------------------------------------------------
# Strategies: small vertex universe => duplicate edges, dense incidence
# buckets, frequent rule-2/rule-3 activity.
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 18), st.integers(0, 18)).filter(
        lambda t: t[0] != t[1]),
    min_size=1, max_size=70)

partition_counts = st.integers(2, 8)


def stream_of(pairs):
    return InMemoryEdgeStream([Edge(u, v) for u, v in pairs])


def run_partitioner(pairs, k, backend=None, window_backend="array",
                    **kwargs):
    if backend is None:
        partitioner = AdwisePartitioner(range(k), fast=True,
                                        window_backend=window_backend,
                                        **kwargs)
        return partitioner, partitioner.partition_stream(stream_of(pairs))
    with forced_backend(backend):
        return run_partitioner(pairs, k, window_backend=window_backend,
                               **kwargs)


def assert_same_run(reference, result):
    ref_partitioner, ref_result = reference
    partitioner, res = result
    assert (list(res.assignments.items())
            == list(ref_result.assignments.items()))
    assert res.replication_degree == ref_result.replication_degree
    assert res.imbalance == ref_result.imbalance
    assert res.latency_ms == ref_result.latency_ms
    assert res.score_computations == ref_result.score_computations
    assert res.extras == ref_result.extras
    ref_events = [(e.assignments, e.window_before, e.window_after, e.decision)
                  for e in ref_partitioner.controller.events]
    events = [(e.assignments, e.window_before, e.window_after, e.decision)
              for e in partitioner.controller.events]
    assert events == ref_events


# ---------------------------------------------------------------------------
# Differential grid: heap agenda == object window, per backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=12)
@given(edge_lists, partition_counts)
def test_lazy_fixed_window_parity(backend, pairs, k):
    reference = run_partitioner(pairs, k, window_backend="object",
                                fixed_window=12)
    assert_same_run(reference, run_partitioner(pairs, k, backend=backend,
                                               fixed_window=12))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=10)
@given(edge_lists, partition_counts)
def test_lazy_adaptive_window_parity(backend, pairs, k):
    reference = run_partitioner(pairs, k, window_backend="object",
                                latency_preference_ms=5.0)
    assert_same_run(reference, run_partitioner(
        pairs, k, backend=backend, latency_preference_ms=5.0))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=8)
@given(edge_lists, partition_counts)
def test_eager_fixed_window_parity(backend, pairs, k):
    reference = run_partitioner(pairs, k, window_backend="object",
                                fixed_window=10, lazy=False)
    assert_same_run(reference, run_partitioner(
        pairs, k, backend=backend, fixed_window=10, lazy=False))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=8)
@given(edge_lists, partition_counts)
def test_eager_adaptive_window_parity(backend, pairs, k):
    reference = run_partitioner(pairs, k, window_backend="object",
                                latency_preference_ms=5.0, lazy=False)
    assert_same_run(reference, run_partitioner(
        pairs, k, backend=backend, latency_preference_ms=5.0, lazy=False))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=8)
@given(edge_lists, partition_counts)
def test_duplicate_heavy_stream_parity(backend, pairs, k):
    doubled = [pair for pair in pairs for _ in (0, 1)]
    reference = run_partitioner(doubled, k, window_backend="object",
                                fixed_window=8)
    assert_same_run(reference, run_partitioner(doubled, k, backend=backend,
                                               fixed_window=8))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=6)
@given(edge_lists, partition_counts)
def test_tiny_candidate_cap_parity(backend, pairs, k):
    """max_candidates=2 forces constant rule-2 rescues and promotions."""
    reference = run_partitioner(pairs, k, window_backend="object",
                                fixed_window=10, max_candidates=2)
    assert_same_run(reference, run_partitioner(
        pairs, k, backend=backend, fixed_window=10, max_candidates=2))


# ---------------------------------------------------------------------------
# Agenda strategies: heap vs. scan vs. object, driven directly
# ---------------------------------------------------------------------------

def drive_array(pairs, k, backend, agenda, window=9, lazy=True):
    """Pump an ArrayEdgeWindow like the partitioner does; pop trace."""
    with forced_backend(backend):
        state = FastPartitionState(range(k))
        scoring = AdwiseScoring(state, balancer=None)
        win = ArrayEdgeWindow(scoring, lazy=lazy, agenda=agenda)
    return _drive(win, state, scoring, pairs, window)


def drive_object(pairs, k, window=9, lazy=True):
    state = FastPartitionState(range(k))
    scoring = AdwiseScoring(state, balancer=None)
    win = EdgeWindow(scoring, lazy=lazy)
    return _drive(win, state, scoring, pairs, window)


def _drive(win, state, scoring, pairs, window):
    edges = [Edge(u, v).canonical() for u, v in pairs]
    trace = []
    i = 0
    while i < len(edges) or len(win):
        block = []
        while i < len(edges) and len(win) + len(block) < window:
            block.append(edges[i])
            i += 1
        if block:
            win.add_block(block, observe=state.observe_degrees)
        edge, partition, score = win.pop_best()
        changed = state.assign(edge, partition)
        scoring.after_assignment()
        if changed:
            win.on_replicas_changed(changed)
        trace.append((edge.u, edge.v, partition, score))
    return trace


@pytest.mark.parametrize("backend", BACKENDS)
@settings(deadline=None, max_examples=10)
@given(edge_lists, partition_counts)
def test_heap_equals_scan_equals_object(backend, pairs, k):
    reference = drive_object(pairs, k)
    assert drive_array(pairs, k, backend, "heap") == reference
    assert drive_array(pairs, k, backend, "scan") == reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_scan_agenda_long_stream(backend):
    pairs = [(i % 23, (i * 7 + 1) % 29 + 23) for i in range(300)]
    assert (drive_array(pairs, 4, backend, "scan", window=24)
            == drive_object(pairs, 4, window=24))


def test_invalid_agenda_rejected():
    state = FastPartitionState([0, 1])
    scoring = AdwiseScoring(state, balancer=None)
    with pytest.raises(ValueError):
        ArrayEdgeWindow(scoring, agenda="bogus")


# ---------------------------------------------------------------------------
# Heap invariants: property tests over the looped-Python source
# ---------------------------------------------------------------------------

_CAPACITY = 32

heap_ops = st.lists(
    st.tuples(st.sampled_from(["push", "remove", "restamp"]),
              st.integers(0, _CAPACITY - 1),
              st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.5, -3.0])),
    min_size=1, max_size=80)


def check_heap_invariants(heap, heap_pos, hctl, score, entry, members):
    n = int(hctl[0])
    assert n == len(members)
    assert set(heap[:n].tolist()) == members
    for pos in range(n):
        slot = int(heap[pos])
        assert int(heap_pos[slot]) == pos
        for child in (2 * pos + 1, 2 * pos + 2):
            if child < n:
                # Strict total order: parent beats child on
                # (score desc, entry asc); entries are unique.
                assert kp.heap_better(score, entry, slot,
                                      int(heap[child]))
    for slot in range(_CAPACITY):
        if slot not in members:
            assert int(heap_pos[slot]) == -1


@settings(deadline=None, max_examples=200)
@given(heap_ops)
def test_heap_invariants_pyloop(ops):
    heap = np.zeros(_CAPACITY, dtype=np.int64)
    heap_pos = np.full(_CAPACITY, -1, dtype=np.int64)
    hctl = np.zeros(4, dtype=np.int64)
    score = np.zeros(_CAPACITY, dtype=np.float64)
    entry = np.arange(_CAPACITY, dtype=np.int64)  # unique tie-break ids
    members = set()
    for op, slot, value in ops:
        if op == "push":
            if slot in members:
                continue
            score[slot] = value
            kp.heap_push(heap, heap_pos, hctl, score, entry, slot)
            members.add(slot)
        elif op == "remove":
            kp.heap_remove(heap, heap_pos, hctl, score, entry, slot)
            members.discard(slot)
        else:  # restamp: score changes in place, then a full repair
            score[slot] = value
            kp.heap_heapify(heap, heap_pos, hctl, score, entry)
        check_heap_invariants(heap, heap_pos, hctl, score, entry, members)


@settings(deadline=None, max_examples=150)
@given(heap_ops, st.integers(0, _CAPACITY - 1))
def test_heap_fix_matches_full_heapify(ops, fix_slot):
    """Single-key repair (heap_fix) must restore the same invariant a
    full heapify would — this is the pop path's m==1 fast case."""
    heap = np.zeros(_CAPACITY, dtype=np.int64)
    heap_pos = np.full(_CAPACITY, -1, dtype=np.int64)
    hctl = np.zeros(4, dtype=np.int64)
    score = np.zeros(_CAPACITY, dtype=np.float64)
    entry = np.arange(_CAPACITY, dtype=np.int64)
    members = set()
    for op, slot, value in ops:
        if op == "push" and slot not in members:
            score[slot] = value
            kp.heap_push(heap, heap_pos, hctl, score, entry, slot)
            members.add(slot)
    if fix_slot not in members:
        return
    score[fix_slot] = 7.25  # single stale key, repaired in place
    kp.heap_fix(heap, heap_pos, score, entry, int(hctl[0]),
                int(heap_pos[fix_slot]))
    check_heap_invariants(heap, heap_pos, hctl, score, entry, members)


@pytest.mark.parametrize("backend", NATIVE + ["pyloop"])
def test_live_window_heap_invariants(backend):
    """After a duplicate-heavy run with interleaved pops, the live
    window's agenda must still be a valid indexed max-heap."""
    pairs = [(i % 11, (i * 5 + 2) % 13 + 11) for i in range(120)] * 2
    with forced_backend(backend):
        state = FastPartitionState(range(4))
        scoring = AdwiseScoring(state, balancer=None)
        win = ArrayEdgeWindow(scoring, lazy=True)
    edges = [Edge(u, v).canonical() for u, v in pairs]
    for i, edge in enumerate(edges):
        win.add_block([edge], observe=state.observe_degrees)
        if i % 3 == 2:
            edge_out, partition, _ = win.pop_best()
            changed = state.assign(edge_out, partition)
            scoring.after_assignment()
            if changed:
                win.on_replicas_changed(changed)
    n = int(win._hctl[0])
    assert n == win.candidate_count
    for pos in range(n):
        slot = int(win._heap[pos])
        assert int(win._heap_pos[slot]) == pos
        assert bool(win._candidate[slot])
        for child in (2 * pos + 1, 2 * pos + 2):
            if child < n:
                assert kp.heap_better(win._score, win._entry, slot,
                                      int(win._heap[child]))


# ---------------------------------------------------------------------------
# Backend parity: the numpy fallback equals every native backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend",
                         [name for name in BACKENDS if name != "numpy"])
def test_kernel_parity_vs_numpy(backend):
    """Full-run equality between numpy and each buildable backend (the
    CI numba leg runs this with numba importable, covering the
    numpy-vs-numba case on top of cc and pyloop)."""
    pairs = [((i * 13 + 3) % 59, (i * 7 + 1) % 61 + 59) for i in range(500)]
    reference = run_partitioner(pairs, 6, backend="numpy", fixed_window=48)
    assert_same_run(reference,
                    run_partitioner(pairs, 6, backend=backend,
                                    fixed_window=48))


@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_backend_property(backend):
    with forced_backend(backend):
        state = FastPartitionState([0, 1])
        win = ArrayEdgeWindow(AdwiseScoring(state, balancer=None))
        assert win.kernel_backend == backend


# ---------------------------------------------------------------------------
# Environment switches (REPRO_KERNEL / REPRO_NUMBA)
# ---------------------------------------------------------------------------

def test_repro_numba_0_forces_numpy(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    monkeypatch.setenv("REPRO_NUMBA", "0")
    assert _kernels.resolve_backend_name() == "numpy"
    state = FastPartitionState([0, 1])
    win = ArrayEdgeWindow(AdwiseScoring(state, balancer=None))
    assert win.kernel_backend == "numpy"


def test_repro_numba_1_prefers_numba(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    monkeypatch.setenv("REPRO_NUMBA", "1")
    resolved = _kernels.resolve_backend_name()
    if "numba" in BACKENDS:
        assert resolved == "numba"
    else:
        assert resolved == ("cc" if "cc" in BACKENDS else "numpy")


def test_unknown_kernel_name_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "simd")
    with pytest.warns(RuntimeWarning):
        assert _kernels.resolve_backend_name() == "numpy"


@pytest.mark.skipif("numba" in BACKENDS, reason="numba importable here")
def test_explicit_numba_unavailable_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "numba")
    with pytest.warns(RuntimeWarning):
        assert _kernels.resolve_backend_name() == "numpy"


# ---------------------------------------------------------------------------
# Restore paths: snapshot/restore and object-window migration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("agenda", ["heap", "scan"])
def test_image_roundtrip_continues_identically(backend, agenda):
    pairs = [(i % 15, (i * 3 + 1) % 17 + 15) for i in range(90)]
    with forced_backend(backend):
        state = FastPartitionState(range(4))
        scoring = AdwiseScoring(state, balancer=None)
        win = ArrayEdgeWindow(scoring, lazy=True, agenda=agenda)
        edges = [Edge(u, v).canonical() for u, v in pairs]
        for edge in edges[:40]:
            win.add_block([edge], observe=state.observe_degrees)
        for _ in range(20):
            edge, partition, _ = win.pop_best()
            changed = state.assign(edge, partition)
            scoring.after_assignment()
            if changed:
                win.on_replicas_changed(changed)
        restored = ArrayEdgeWindow.from_image(scoring, win.to_image(),
                                              agenda=agenda)
        assert len(restored) == len(win)
        assert restored.edges() == win.edges()
        while len(win):
            assert restored.pop_best() == win.pop_best()


@pytest.mark.parametrize("backend", BACKENDS)
def test_migration_from_object_window(backend):
    pairs = [(i % 12, (i * 5 + 3) % 14 + 12) for i in range(60)]
    state = FastPartitionState(range(3))
    scoring = AdwiseScoring(state, balancer=None)
    object_win = EdgeWindow(scoring, lazy=True)
    for u, v in pairs:
        edge = Edge(u, v).canonical()
        state.observe_degrees(edge)
        object_win.add(edge)
    with forced_backend(backend):
        migrated = ArrayEdgeWindow.from_object_window(object_win)
    assert len(migrated) == len(object_win)
    assert migrated.promotions == object_win.promotions
    while len(object_win):
        assert migrated.pop_best() == object_win.pop_best()
