"""Integration-level tests for the assembled ADWISE partitioner."""


from repro.graph.graph import Edge, Graph
from repro.graph.stream import InMemoryEdgeStream, shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.simtime import SimulatedClock


class TestContract:
    def test_all_edges_assigned(self, small_stream):
        partitioner = AdwisePartitioner(range(4), fixed_window=8)
        result = partitioner.partition_stream(small_stream)
        assert len(result.assignments) == len(small_stream)
        assert result.state.assigned_edges == len(small_stream)

    def test_assignments_within_spread(self, small_stream):
        partitioner = AdwisePartitioner([3, 7], fixed_window=8)
        result = partitioner.partition_stream(small_stream)
        assert set(result.assignments.values()) <= {3, 7}

    def test_deterministic(self, small_powerlaw):
        def run():
            stream = shuffled(small_powerlaw.edges(), seed=3)
            return AdwisePartitioner(
                range(4), fixed_window=16).partition_stream(stream)
        assert run().assignments == run().assignments

    def test_extras_populated(self, small_stream):
        result = AdwisePartitioner(
            range(4), latency_preference_ms=50.0).partition_stream(small_stream)
        assert "max_window" in result.extras
        assert "final_window" in result.extras
        assert "final_lambda" in result.extras

    def test_empty_stream(self):
        result = AdwisePartitioner(range(4)).partition_stream(
            InMemoryEdgeStream([]))
        assert result.assignments == {}
        assert result.replication_degree == 0.0

    def test_single_edge_stream(self):
        result = AdwisePartitioner(range(4)).partition_stream(
            InMemoryEdgeStream([Edge(1, 2)]))
        assert len(result.assignments) == 1


class TestWindowBehaviour:
    def test_fixed_window_one_equals_single_edge_streaming(self, small_stream):
        """w=1 is the degenerate single-edge case (paper §III-A)."""
        result = AdwisePartitioner(
            range(4), fixed_window=1).partition_stream(small_stream)
        assert result.extras["max_window"] == 1.0

    def test_zero_latency_preference_stays_single_edge(self, small_stream):
        result = AdwisePartitioner(
            range(4), latency_preference_ms=0.0).partition_stream(small_stream)
        # The controller may grow once at stream end (no edges remain),
        # but must never operate a meaningful window.
        assert result.extras["max_window"] <= 2.0

    def test_unbounded_preference_grows_window(self, small_stream):
        result = AdwisePartitioner(
            range(4), latency_preference_ms=None,
            max_window=64).partition_stream(small_stream)
        assert result.extras["max_window"] >= 8.0

    def test_latency_budget_respected_approximately(self, small_powerlaw):
        """Measured latency must not overshoot L by more than ~10%.

        (The paper reports overshoot of at most 7%.)
        """
        stream = shuffled(small_powerlaw.edges(), seed=3)
        preference = 30.0
        clock = SimulatedClock()
        result = AdwisePartitioner(
            range(4), latency_preference_ms=preference,
            clock=clock).partition_stream(stream)
        assert result.latency_ms <= preference * 1.10

    def test_larger_window_not_worse(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        small = AdwisePartitioner(
            range(4), fixed_window=1).partition_stream(stream)
        large = AdwisePartitioner(
            range(4), fixed_window=32).partition_stream(stream)
        assert (large.replication_degree
                <= small.replication_degree * 1.02)


class TestQuality:
    def test_beats_hash(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        adwise = AdwisePartitioner(
            range(8), fixed_window=32).partition_stream(stream)
        hashed = HashPartitioner(range(8)).partition_stream(stream)
        assert adwise.replication_degree < hashed.replication_degree

    def test_competitive_with_hdrf_on_clustered_graph(self, small_clustered):
        stream = shuffled(small_clustered.edges(), seed=3)
        adwise = AdwisePartitioner(
            range(8), fixed_window=32).partition_stream(stream)
        hdrf = HDRFPartitioner(range(8)).partition_stream(stream)
        assert adwise.replication_degree <= hdrf.replication_degree * 1.05

    def test_balanced_result(self, small_stream):
        result = AdwisePartitioner(
            range(4), fixed_window=16).partition_stream(small_stream)
        assert result.imbalance < 0.1

    def test_clustering_score_helps_on_clustered_graph(self, small_web):
        stream = shuffled(small_web.edges(), seed=3)
        with_cs = AdwisePartitioner(
            range(8), fixed_window=32,
            use_clustering=True).partition_stream(stream)
        without_cs = AdwisePartitioner(
            range(8), fixed_window=32,
            use_clustering=False).partition_stream(stream)
        assert (with_cs.replication_degree
                <= without_cs.replication_degree * 1.05)


class TestSelectPartition:
    def test_single_edge_driver_works(self):
        partitioner = AdwisePartitioner(range(4))
        partition = partitioner.partition_edge(Edge(1, 2))
        assert partition in range(4)
        assert partitioner.state.assigned_edges == 1
