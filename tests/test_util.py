"""Unit tests for hashing utilities."""

import pytest

from repro.util import hash_to_range, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(42) == stable_hash(42)

    def test_seed_changes_hash(self):
        assert stable_hash(42, seed=0) != stable_hash(42, seed=1)

    def test_sequential_ids_scatter(self):
        """Unlike built-in hash, sequential ints must not map sequentially."""
        values = [stable_hash(i) % 16 for i in range(64)]
        assert values != sorted(values)
        assert len(set(values)) > 4

    def test_64_bit_range(self):
        for v in (0, 1, 2**40, 2**63):
            assert 0 <= stable_hash(v) < 2**64


class TestHashToRange:
    def test_within_range(self):
        for i in range(100):
            assert 0 <= hash_to_range(i, 7) < 7

    def test_roughly_uniform(self):
        counts = [0] * 8
        for i in range(8000):
            counts[hash_to_range(i, 8)] += 1
        assert all(800 < c < 1200 for c in counts)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hash_to_range(1, 0)
