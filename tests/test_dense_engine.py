"""Differential layer: dense (CSR/numpy) mode ≡ object mode.

Every dense kernel must reproduce the object path's observable behaviour
on the same graph and placement: identical superstep counts, message
counts, convergence flags, per-superstep aggregates and cost traces, and
identical states — bit-exact for integer-state programs (components,
label propagation, k-core), ``allclose`` for float-state programs
(PageRank, SSSP) whose message sums may be reassociated.  Programs
without a kernel must transparently fall back to the object path.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert_graph
from repro.graph.graph import Graph
from repro.graph.io import read_graph
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.algorithms import (
    CliqueSearch,
    ConnectedComponents,
    GreedyColoring,
    KCore,
    LabelPropagation,
    PageRank,
    SingleSourceShortestPaths,
    TriangleCount,
)

edge_list_strategy = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(
        lambda t: t[0] != t[1]),
    max_size=80)


def placement_for(graph: Graph, k: int = 4, machines: int = 2) -> Placement:
    assignments = {e: hash((e.u, e.v)) % k for e in graph.edges()}
    return Placement(assignments, partitions=list(range(k)),
                     num_machines=machines)


def run_both(graph, program_factory, max_supersteps=100):
    placement = placement_for(graph)
    obj = Engine(graph, placement, mode="object").run(
        program_factory(), max_supersteps=max_supersteps)
    dense = Engine(graph, placement, mode="dense").run(
        program_factory(), max_supersteps=max_supersteps)
    return obj, dense


def assert_equivalent(obj, dense, float_state=False):
    assert dense.algorithm == obj.algorithm
    assert dense.supersteps == obj.supersteps
    assert dense.messages_sent == obj.messages_sent
    assert dense.converged == obj.converged
    assert dense.aggregates == obj.aggregates
    assert dense.latency_ms == pytest.approx(obj.latency_ms)
    assert [c.total_ms for c in dense.superstep_costs] == pytest.approx(
        [c.total_ms for c in obj.superstep_costs])
    assert set(dense.states) == set(obj.states)
    for vertex, expected in obj.states.items():
        got = dense.states[vertex]
        if float_state:
            if isinstance(expected, float) and math.isinf(expected):
                assert math.isinf(got)
            else:
                assert got == pytest.approx(expected, rel=1e-9, abs=1e-12)
        else:
            assert got == expected


def graph_cases():
    isolated = Graph([(0, 1), (2, 3)])
    isolated.add_vertex(77)
    single = Graph()
    single.add_vertex(3)
    return {
        "empty": Graph(),
        "single-vertex": single,
        "isolated": isolated,
        "triangle": Graph([(0, 1), (1, 2), (0, 2)]),
        "star": Graph([(0, i) for i in range(1, 6)]),
        "path": Graph([(i, i + 1) for i in range(5)]),
        "powerlaw": barabasi_albert_graph(n=150, m=3, seed=13),
    }


def program_cases():
    return {
        "pagerank": (lambda: PageRank(iterations=12), True),
        "components": (lambda: ConnectedComponents(), False),
        "sssp": (lambda: SingleSourceShortestPaths(source=0), True),
        "labelprop": (lambda: LabelPropagation(max_iterations=15), False),
        "kcore": (lambda: KCore(k=2), False),
    }


@pytest.mark.parametrize("graph_name", sorted(graph_cases()))
@pytest.mark.parametrize("program_name", sorted(program_cases()))
def test_dense_matches_object(graph_name, program_name):
    graph = graph_cases()[graph_name]
    factory, float_state = program_cases()[program_name]
    obj, dense = run_both(graph, factory)
    assert_equivalent(obj, dense, float_state=float_state)


class TestDifferentialProperties:
    """Hypothesis sweep: random graphs (with isolated vertices) per kernel."""

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy, iterations=st.integers(1, 8))
    def test_pagerank(self, edges, iterations):
        obj, dense = run_both(
            Graph(edges), lambda: PageRank(iterations=iterations))
        assert_equivalent(obj, dense, float_state=True)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy, extra_vertex=st.integers(26, 30))
    def test_components(self, edges, extra_vertex):
        graph = Graph(edges)
        graph.add_vertex(extra_vertex)
        obj, dense = run_both(graph, ConnectedComponents)
        assert_equivalent(obj, dense)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy, source=st.integers(0, 30))
    def test_sssp(self, edges, source):
        obj, dense = run_both(
            Graph(edges), lambda: SingleSourceShortestPaths(source))
        assert_equivalent(obj, dense, float_state=True)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy, max_iterations=st.integers(1, 10))
    def test_label_propagation(self, edges, max_iterations):
        obj, dense = run_both(
            Graph(edges),
            lambda: LabelPropagation(max_iterations=max_iterations))
        assert_equivalent(obj, dense)

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy, k=st.integers(1, 5))
    def test_kcore(self, edges, k):
        obj, dense = run_both(Graph(edges), lambda: KCore(k=k))
        assert_equivalent(obj, dense)

    @settings(max_examples=25, deadline=None)
    @given(edges=edge_list_strategy, cap=st.integers(1, 6))
    def test_max_supersteps_truncation(self, edges, cap):
        """Parity must hold when the cap interrupts mid-run."""
        obj, dense = run_both(
            Graph(edges), lambda: PageRank(iterations=10),
            max_supersteps=cap)
        assert_equivalent(obj, dense, float_state=True)


class TestFileBackedGraph:
    def test_differential_on_file_graph(self, tmp_path):
        graph = barabasi_albert_graph(n=120, m=2, seed=5)
        path = tmp_path / "graph.txt"
        path.write_text("".join(f"{e.u} {e.v}\n" for e in graph.edges()),
                        encoding="utf-8")
        loaded = read_graph(str(path))
        for factory, float_state in program_cases().values():
            obj, dense = run_both(loaded, factory)
            assert_equivalent(obj, dense, float_state=float_state)


class TestFallback:
    @pytest.mark.parametrize("factory", [
        lambda: GreedyColoring(max_iterations=8),
        lambda: TriangleCount(),
        lambda: CliqueSearch(3, seeds=[0, 1], seed=2),
    ])
    def test_kernel_less_program_falls_back(self, two_triangles, factory):
        assert factory().dense_kernel(None) is None
        obj, dense = run_both(two_triangles, factory, max_supersteps=20)
        # Fallback runs the identical object path: bit-exact everything.
        assert dense.states == obj.states
        assert_equivalent(obj, dense)

    def test_dense_engine_still_validates_targets(self, two_triangles):
        from repro.engine.vertex_program import VertexProgram

        class Bad(VertexProgram):
            name = "bad"

            def initial_state(self, vertex, degree):
                return 0

            def compute(self, vertex, state, messages, neighbors, ctx):
                ctx.send(999, "boom")
                return state

        engine = Engine(two_triangles, placement_for(two_triangles),
                        mode="dense")
        with pytest.raises(KeyError):
            engine.run(Bad())


class TestEngineModeApi:
    def test_unknown_mode_rejected(self, triangle):
        with pytest.raises(ValueError):
            Engine(triangle, placement_for(triangle), mode="sparse")

    def test_csr_snapshot_cached(self, triangle):
        engine = Engine(triangle, placement_for(triangle), mode="dense")
        assert engine.csr is engine.csr

    def test_invalid_max_supersteps_in_dense_mode(self, triangle):
        engine = Engine(triangle, placement_for(triangle), mode="dense")
        with pytest.raises(ValueError):
            engine.run(PageRank(iterations=2), max_supersteps=0)

    def test_aggregates_default_is_fresh_list(self):
        from repro.engine.runtime import SimulationReport

        first = SimulationReport("a", 0, 0.0, [], {}, 0, True)
        second = SimulationReport("b", 0, 0.0, [], {}, 0, True)
        assert first.aggregates == []
        first.aggregates.append(1)
        assert second.aggregates == []
