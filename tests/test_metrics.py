"""Unit tests for partitioning quality metrics."""

import pytest

from repro.graph.graph import Edge
from repro.partitioning.metrics import (
    balance_ratio,
    cut_vertices,
    imbalance,
    merge_replica_sets,
    partition_sizes,
    replica_sets_from_assignments,
    replication_degree,
    vertex_copies,
)


@pytest.fixture
def sample_assignments():
    return {
        Edge(0, 1): 0,
        Edge(1, 2): 0,
        Edge(2, 3): 1,
        Edge(3, 0): 1,
    }


class TestReplicaSets:
    def test_from_assignments(self, sample_assignments):
        replicas = replica_sets_from_assignments(sample_assignments)
        assert replicas[0] == {0, 1}
        assert replicas[1] == {0}
        assert replicas[2] == {0, 1}
        assert replicas[3] == {1}

    def test_replication_degree(self, sample_assignments):
        replicas = replica_sets_from_assignments(sample_assignments)
        assert replication_degree(replicas) == pytest.approx(6 / 4)

    def test_replication_degree_empty(self):
        assert replication_degree({}) == 0.0

    def test_merge(self):
        merged = merge_replica_sets([{1: {0}}, {1: {2}, 3: {1}}])
        assert merged == {1: {0, 2}, 3: {1}}

    def test_vertex_copies(self, sample_assignments):
        replicas = replica_sets_from_assignments(sample_assignments)
        assert vertex_copies(replicas) == 6

    def test_cut_vertices(self, sample_assignments):
        replicas = replica_sets_from_assignments(sample_assignments)
        assert set(cut_vertices(replicas)) == {0, 2}


class TestBalance:
    def test_partition_sizes_include_empty(self, sample_assignments):
        sizes = partition_sizes(sample_assignments, [0, 1, 2])
        assert sizes == {0: 2, 1: 2, 2: 0}

    def test_balance_ratio_perfect(self):
        assert balance_ratio({0: 5, 1: 5}) == 1.0

    def test_balance_ratio_empty_partition(self):
        assert balance_ratio({0: 5, 1: 0}) == 0.0

    def test_balance_ratio_no_partitions(self):
        assert balance_ratio({}) == 1.0

    def test_imbalance_zero_when_equal(self):
        assert imbalance({0: 3, 1: 3}) == 0.0

    def test_imbalance_formula(self):
        assert imbalance({0: 10, 1: 8}) == pytest.approx(0.2)

    def test_imbalance_all_empty(self):
        assert imbalance({0: 0, 1: 0}) == 0.0
