"""Property-based tests for out-of-core byte-offset file chunking.

The invariant the parallel loader stands on: splitting an edge file into
byte spans and streaming each span covers every edge of the file
*exactly once*, in order, with no loss or duplication at split
boundaries — for any chunk count and any file formatting (CRLF line
endings, blank lines, comments, missing trailing newline).
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Edge
from repro.graph.io import (
    byte_spans,
    count_edges,
    count_edges_span,
    iter_edge_file,
    iter_edge_file_span,
)
from repro.graph.stream import FileChunkStream, chunk_file_stream

#: One logical line of an edge file: an edge, a comment, or a blank.
line_strategy = st.one_of(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
        lambda t: f"{t[0]} {t[1]}"),
    st.sampled_from(["# comment", "% other comment", "", "   ",
                     "#", "  # indented comment"]),
)

file_strategy = st.tuples(
    st.lists(line_strategy, max_size=60),
    st.booleans(),   # CRLF line endings
    st.booleans(),   # trailing newline on the last line
)


def write_file(tmpdir: str, lines, crlf: bool, trailing_newline: bool) -> str:
    path = os.path.join(tmpdir, "graph.txt")
    ending = "\r\n" if crlf else "\n"
    text = ending.join(lines)
    if lines and trailing_newline:
        text += ending
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)
    return path


@settings(max_examples=60, deadline=None)
@given(spec=file_strategy, num_chunks=st.integers(1, 12))
def test_chunks_cover_every_edge_exactly_once(spec, num_chunks):
    lines, crlf, trailing_newline = spec
    with tempfile.TemporaryDirectory() as tmpdir:
        path = write_file(tmpdir, lines, crlf, trailing_newline)
        full = list(iter_edge_file(path))
        spans = byte_spans(path, num_chunks)
        # Spans are contiguous and cover the whole file.
        assert len(spans) == num_chunks
        assert spans[0][0] == 0
        assert spans[-1][1] == os.path.getsize(path)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start
        # Concatenating the spans reproduces the file's edges exactly.
        chunked = [edge for start, end in spans
                   for edge in iter_edge_file_span(path, start, end)]
        assert chunked == full
        assert sum(count_edges_span(path, s, e) for s, e in spans) \
            == count_edges(path)


@settings(max_examples=40, deadline=None)
@given(spec=file_strategy, num_chunks=st.integers(1, 8))
def test_chunk_streams_report_exact_lengths(spec, num_chunks):
    lines, crlf, trailing_newline = spec
    with tempfile.TemporaryDirectory() as tmpdir:
        path = write_file(tmpdir, lines, crlf, trailing_newline)
        chunks = chunk_file_stream(path, num_chunks)
        for chunk in chunks:
            assert len(chunk) == len(list(chunk))
        assert sum(len(c) for c in chunks) == count_edges(path)


@settings(max_examples=40, deadline=None)
@given(num_edges=st.integers(0, 40), num_chunks=st.integers(1, 50))
def test_more_chunks_than_lines_yields_empty_tail_chunks(num_edges,
                                                         num_chunks):
    """Degenerate splits (chunks >> lines) produce empty, valid chunks."""
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "graph.txt")
        with open(path, "w", encoding="utf-8") as handle:
            for i in range(num_edges):
                handle.write(f"{i} {i + 1}\n")
        chunks = chunk_file_stream(path, num_chunks)
        assert len(chunks) == num_chunks
        edges = [e for c in chunks for e in c]
        assert edges == [Edge(i, i + 1) for i in range(num_edges)]


class TestChunkingEdgeCases:
    def test_empty_file(self, tmp_path):
        path = os.fspath(tmp_path / "empty.txt")
        open(path, "w").close()
        for num_chunks in (1, 3):
            chunks = chunk_file_stream(path, num_chunks)
            assert [list(c) for c in chunks] == [[]] * num_chunks

    def test_comments_only_file(self, tmp_path):
        path = os.fspath(tmp_path / "comments.txt")
        with open(path, "w") as handle:
            handle.write("# a\n% b\n\n# c\n")
        chunks = chunk_file_stream(path, 3)
        assert sum(len(c) for c in chunks) == 0

    def test_invalid_chunk_count(self, tmp_path):
        path = os.fspath(tmp_path / "g.txt")
        with open(path, "w") as handle:
            handle.write("0 1\n")
        with pytest.raises(ValueError):
            byte_spans(path, 0)

    def test_invalid_span_rejected(self, tmp_path):
        path = os.fspath(tmp_path / "g.txt")
        with open(path, "w") as handle:
            handle.write("0 1\n")
        with pytest.raises(ValueError):
            list(iter_edge_file_span(path, 5, 2))

    def test_malformed_line_fails_loudly_in_span(self, tmp_path):
        path = os.fspath(tmp_path / "bad.txt")
        with open(path, "w") as handle:
            handle.write("0 1\nnot-an-edge\n")
        with pytest.raises(ValueError):
            list(iter_edge_file_span(path, 0, os.path.getsize(path)))

    def test_chunk_stream_is_reiterable(self, tmp_path):
        path = os.fspath(tmp_path / "g.txt")
        with open(path, "w") as handle:
            for i in range(10):
                handle.write(f"{i} {i + 1}\n")
        chunk = chunk_file_stream(path, 2)[0]
        assert list(chunk) == list(chunk)  # single-pass file handle per iter

    def test_explicit_length_skips_counting_pass(self, tmp_path):
        path = os.fspath(tmp_path / "g.txt")
        with open(path, "w") as handle:
            handle.write("0 1\n1 2\n")
        chunk = FileChunkStream(path, 0, os.path.getsize(path), length=2)
        assert len(chunk) == 2
        assert len(list(chunk)) == 2
