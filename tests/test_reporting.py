"""Tests for the plain-text report rendering."""

from repro.bench.harness import LatencyRow
from repro.bench.reporting import (
    format_spotlight,
    format_stacked_rows,
    format_table,
    summarize_winner,
)


def make_row(label, part=10.0, blocks=(100.0, 100.0), repl=2.0, imb=0.01):
    return LatencyRow(label=label, partitioning_ms=part,
                      block_ms=list(blocks), replication_degree=repl,
                      imbalance=imb, score_computations=0)


class TestFormatTable:
    def test_includes_headers_and_rows(self):
        text = format_table(["a", "b"], [["x", 1.5]], title="T")
        assert "T" in text
        assert "a" in text and "b" in text
        assert "1.500" in text

    def test_column_alignment_widths(self):
        text = format_table(["name", "value"],
                            [["a-very-long-label", 1.0], ["b", 22.5]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[0:1]}) == 1

    def test_no_title(self):
        text = format_table(["h"], [["v"]])
        assert text.splitlines()[0].startswith("h")


class TestFormatStacked:
    def test_cumulative_columns(self):
        row = make_row("cfg", part=10.0, blocks=(5.0, 5.0, 5.0))
        text = format_stacked_rows([row], num_blocks=3)
        assert "total@1blk" in text
        assert "15.000" in text  # 10 + 5
        assert "25.000" in text  # 10 + 15

    def test_title_rendered(self):
        text = format_stacked_rows([make_row("x")], title="Fig", num_blocks=2)
        assert text.startswith("Fig")


class TestFormatSpotlight:
    def test_strategies_by_spread(self):
        results = {"HDRF": {4: 2.0, 32: 5.0}, "DBH": {4: 3.0, 32: 8.0}}
        text = format_spotlight(results)
        assert "spread=4" in text and "spread=32" in text
        assert "HDRF" in text and "DBH" in text
        assert "2.000" in text and "8.000" in text

    def test_missing_spread_rendered_nan(self):
        text = format_spotlight({"A": {4: 1.0}, "B": {8: 2.0}})
        assert "nan" in text


class TestSummarizeWinner:
    def test_picks_min_total(self):
        rows = [make_row("slow", part=100.0, blocks=(10.0,)),
                make_row("fast", part=1.0, blocks=(10.0,))]
        text = summarize_winner(rows, blocks=1)
        assert "fast" in text

    def test_winner_depends_on_blocks(self):
        # 'invest' pays more partitioning for cheaper blocks.
        rows = [make_row("cheap", part=0.0, blocks=(100.0, 100.0)),
                make_row("invest", part=50.0, blocks=(50.0, 50.0))]
        assert "cheap" in summarize_winner(rows, blocks=1)
        assert "invest" in summarize_winner(rows, blocks=2)
