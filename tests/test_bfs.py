"""Tests for BFS with parent pointers."""

import math

from repro.graph.graph import Graph
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.algorithms import BreadthFirstSearch


def engine_for(graph, k=4):
    assignments = {e: hash((e.u, e.v)) % k for e in graph.edges()}
    placement = Placement(assignments, partitions=list(range(k)),
                          num_machines=2)
    return Engine(graph, placement)


class TestBFS:
    def test_distances_on_path(self, path_graph):
        report = engine_for(path_graph).run(BreadthFirstSearch(0),
                                            max_supersteps=10)
        for v in range(5):
            distance, _ = report.states[v]
            assert distance == v

    def test_parent_pointers_form_tree(self, two_triangles):
        report = engine_for(two_triangles).run(BreadthFirstSearch(1),
                                               max_supersteps=10)
        for vertex, (distance, parent) in report.states.items():
            if vertex == 1:
                assert parent is None
                continue
            assert parent is not None
            parent_distance, _ = report.states[parent]
            assert parent_distance == distance - 1

    def test_path_reconstruction(self, path_graph):
        report = engine_for(path_graph).run(BreadthFirstSearch(0),
                                            max_supersteps=10)
        assert BreadthFirstSearch.path_to(report.states, 4) == [0, 1, 2, 3, 4]
        assert BreadthFirstSearch.path_to(report.states, 0) == [0]

    def test_unreachable_vertex(self):
        graph = Graph([(0, 1), (5, 6)])
        report = engine_for(graph).run(BreadthFirstSearch(0),
                                       max_supersteps=10)
        distance, parent = report.states[5]
        assert math.isinf(distance)
        assert BreadthFirstSearch.path_to(report.states, 5) == []

    def test_shortest_over_alternative_routes(self):
        # Square plus a chord: 0-1-2 vs 0-3-2; with chord 0-2 direct.
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        report = engine_for(graph).run(BreadthFirstSearch(0),
                                       max_supersteps=10)
        assert report.states[2][0] == 1  # direct chord wins
