"""Differential tests for the incremental ingestion protocol.

The contract under test: feeding a stream through ``begin`` /
``ingest`` (any chunking) / ``finalize`` is **bit-identical** to the
batch ``partition_stream`` call — same assignments, same simulated
latency, same adaptive-controller extras.  This is what lets the
session facade and the service daemon reuse every algorithm unchanged.
"""

import random

import pytest

from repro.core.adwise import AdwisePartitioner
from repro.graph.graph import Edge
from repro.graph.stream import InMemoryEdgeStream
from repro.partitioning.base import Assignment
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.simtime import SimulatedClock


def _random_edges(n, vertices, seed):
    rng = random.Random(seed)
    edges = [Edge(rng.randrange(vertices), rng.randrange(vertices))
             for _ in range(n)]
    return [e for e in edges if e.u != e.v]


EDGES = _random_edges(1200, 180, seed=42)


def _make(factory):
    return factory(list(range(6)), clock=SimulatedClock())


def _run_batch(factory):
    return _make(factory).partition_stream(InMemoryEdgeStream(EDGES))


def _run_incremental(factory, chunk):
    partitioner = _make(factory)
    partitioner.begin(total_edges=len(EDGES))
    emitted = []
    for start in range(0, len(EDGES), chunk):
        emitted.extend(partitioner.ingest(EDGES[start:start + chunk]))
    return partitioner.finalize(), emitted


ADWISE = lambda parts, clock: AdwisePartitioner(  # noqa: E731
    parts, clock=clock, latency_preference_ms=40.0)
ADWISE_FAST = lambda parts, clock: AdwisePartitioner(  # noqa: E731
    parts, clock=clock, latency_preference_ms=40.0, fast=True)
ADWISE_FIXED = lambda parts, clock: AdwisePartitioner(  # noqa: E731
    parts, clock=clock, fixed_window=64)


@pytest.mark.parametrize("chunk", [1, 7, 64, 500, len(EDGES)])
@pytest.mark.parametrize("factory", [
    ADWISE, ADWISE_FAST, ADWISE_FIXED,
    HDRFPartitioner, DBHPartitioner, GreedyPartitioner,
], ids=["adwise", "adwise-fast", "adwise-fixed", "hdrf", "dbh", "greedy"])
class TestBatchIncrementalParity:
    def test_assignments_identical(self, factory, chunk):
        batch = _run_batch(factory)
        incremental, _ = _run_incremental(factory, chunk)
        assert incremental.assignments == batch.assignments

    def test_latency_and_extras_identical(self, factory, chunk):
        batch = _run_batch(factory)
        incremental, _ = _run_incremental(factory, chunk)
        assert incremental.latency_ms == batch.latency_ms
        assert incremental.extras == batch.extras
        assert (incremental.score_computations
                == batch.score_computations)

    def test_emitted_stream_covers_result(self, factory, chunk):
        """ingest() returns every decision as it is made; together with
        finalize()'s drained tail they reconstruct the assignment map.

        Uses a deduplicated stream: a duplicate edge is legitimately
        re-decided on its second occurrence, so only unique streams give
        a 1:1 emitted/final correspondence to assert on.
        """
        unique = list(dict.fromkeys(e.canonical() for e in EDGES))
        partitioner = _make(factory)
        partitioner.begin(total_edges=len(unique))
        emitted = []
        for start in range(0, len(unique), chunk):
            emitted.extend(partitioner.ingest(unique[start:start + chunk]))
        result = partitioner.finalize()
        replayed = {a.edge: a.partition for a in emitted}
        assert len(replayed) == len(emitted)  # no edge decided twice
        assert set(replayed).issubset(result.assignments)
        for edge, partition in replayed.items():
            assert result.assignments[edge] == partition
        assert len(result.assignments) == len(unique)


class TestIngestProtocol:
    def test_ingest_returns_assignment_objects(self):
        partitioner = HDRFPartitioner(list(range(4)),
                                      clock=SimulatedClock())
        emitted = partitioner.ingest([Edge(1, 2), Edge(2, 3)])
        assert [type(a) for a in emitted] == [Assignment, Assignment]
        assert emitted[0].edge == Edge(1, 2).canonical()
        assert emitted[0].partition in range(4)

    def test_single_edge_algorithms_emit_immediately(self):
        partitioner = DBHPartitioner(list(range(4)),
                                     clock=SimulatedClock())
        partitioner.begin()
        assert len(partitioner.ingest([Edge(0, 1)])) == 1
        assert len(partitioner.ingest([Edge(1, 2), Edge(2, 3)])) == 2

    def test_window_algorithm_buffers(self):
        """ADWISE holds edges back until the window can admit them."""
        partitioner = AdwisePartitioner(list(range(4)),
                                        clock=SimulatedClock(),
                                        fixed_window=32)
        partitioner.begin()
        emitted = partitioner.ingest([Edge(i, i + 1) for i in range(10)])
        assert emitted == []  # window target 32 never filled
        result = partitioner.finalize()
        assert len(result.assignments) == 10

    def test_ingest_without_begin_autostarts(self):
        partitioner = AdwisePartitioner(list(range(4)),
                                        clock=SimulatedClock())
        emitted = partitioner.ingest([Edge(0, 1)])
        result = partitioner.finalize()
        assert len(result.assignments) == len(emitted) == 1

    def test_begin_resets_previous_run(self):
        partitioner = HDRFPartitioner(list(range(4)),
                                      clock=SimulatedClock())
        partitioner.partition_stream(InMemoryEdgeStream(EDGES[:50]))
        partitioner.begin()
        partitioner.ingest([Edge(0, 1)])
        result = partitioner.finalize()
        assert len(result.assignments) == 1

    def test_offline_partitioners_declare_no_incremental(self):
        from repro.partitioning.jabeja import JaBeJaVCPartitioner
        from repro.partitioning.ne import NEPartitioner

        assert not NEPartitioner.supports_incremental
        assert not JaBeJaVCPartitioner.supports_incremental
        assert AdwisePartitioner.supports_incremental
        assert HDRFPartitioner.supports_incremental
