"""Tests for the CSR graph snapshot (the dense engine's substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.stream import InMemoryEdgeStream

edge_list_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)).filter(
        lambda t: t[0] != t[1]),
    max_size=120)


def graph_of(edges, vertices=()) -> Graph:
    graph = Graph(edges)
    for v in vertices:
        graph.add_vertex(v)
    return graph


class TestConstruction:
    def test_from_graph_matches_adjacency(self, two_triangles):
        csr = CSRGraph.from_graph(two_triangles)
        assert csr.num_vertices == two_triangles.num_vertices
        assert csr.num_edges == two_triangles.num_edges
        for index in range(csr.num_vertices):
            vid = csr.original_id(index)
            expected = sorted(two_triangles.neighbors(vid))
            got = [csr.original_id(j) for j in csr.neighbors(index)]
            assert got == expected
            assert csr.degree(index) == two_triangles.degree(vid)

    def test_vertex_ids_sorted_and_remap_consistent(self):
        csr = CSRGraph.from_edges([(30, 7), (7, 100), (100, 2)])
        assert list(csr.vertex_ids) == sorted(csr.vertex_ids)
        for vid, index in csr.index_of.items():
            assert csr.original_id(index) == vid

    def test_neighbor_rows_sorted(self):
        csr = CSRGraph.from_edges([(0, 9), (0, 3), (0, 5), (3, 9)])
        for index in range(csr.num_vertices):
            row = csr.neighbors(index)
            assert list(row) == sorted(row)

    def test_parallel_edges_collapse(self):
        csr = CSRGraph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert csr.num_edges == 1
        assert list(csr.degrees) == [1, 1]

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 1), (2, 2)])

    def test_isolated_vertices_kept(self):
        graph = graph_of([(0, 1)], vertices=[5, 9])
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == 4
        assert csr.degree(csr.index_of[5]) == 0
        assert csr.degree(csr.index_of[9]) == 0

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert list(csr.indptr) == [0]
        assert len(csr.rows) == 0

    def test_from_stream(self):
        csr = CSRGraph.from_stream(InMemoryEdgeStream([(4, 2), (2, 9)]))
        assert csr.num_edges == 2
        assert list(csr.vertex_ids) == [2, 4, 9]

    def test_indices_dtype_compact(self):
        csr = CSRGraph.from_edges([(0, 1)])
        assert csr.indices.dtype == np.int32


class TestLayoutInvariants:
    def test_rows_matches_indptr(self, small_powerlaw):
        csr = CSRGraph.from_graph(small_powerlaw)
        for index in range(csr.num_vertices):
            start, end = csr.indptr[index], csr.indptr[index + 1]
            assert (csr.rows[start:end] == index).all()

    def test_each_edge_twice(self, small_powerlaw):
        csr = CSRGraph.from_graph(small_powerlaw)
        assert len(csr.indices) == 2 * csr.num_edges
        # Symmetry: (u, v) is a slot iff (v, u) is.
        directed = set(zip(csr.rows.tolist(), csr.indices.tolist()))
        assert directed == {(v, u) for u, v in directed}

    @settings(max_examples=60, deadline=None)
    @given(edges=edge_list_strategy)
    def test_equivalent_to_graph(self, edges):
        graph = graph_of(edges)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        adjacency = {
            csr.original_id(i): {csr.original_id(j)
                                 for j in csr.neighbors(i)}
            for i in range(csr.num_vertices)}
        assert adjacency == {v: set(graph.neighbors(v))
                             for v in graph.vertices()}

    @settings(max_examples=40, deadline=None)
    @given(edges=edge_list_strategy)
    def test_from_edges_matches_from_graph(self, edges):
        graph = graph_of(edges)
        via_graph = CSRGraph.from_graph(graph)
        via_edges = CSRGraph.from_edges(edges)
        assert (via_graph.vertex_ids == via_edges.vertex_ids).all()
        assert (via_graph.indptr == via_edges.indptr).all()
        assert (via_graph.indices == via_edges.indices).all()
