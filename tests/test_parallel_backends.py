"""Differential tests: the process backend must be bit-identical to the
simulated reference.

The simulated backend is the semantics every experiment in the repo was
validated against; the process backend is the same computation fanned
out over OS processes through a snapshot-serialization boundary.  These
tests hold the two together for every fast-capable algorithm, worker
counts across 2-8, and both in-memory (seeded random / power-law) and
file-backed (byte-chunked) inputs — if pickling, snapshotting, or the
merge ever drops or reorders information, the diff shows up here.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.graph.generators import barabasi_albert_graph
from repro.graph.graph import Edge
from repro.graph.io import write_edges
from repro.graph.stream import FileEdgeStream, InMemoryEdgeStream
from repro.partitioning.parallel import (
    BACKENDS,
    ParallelLoader,
    PartitionerSpec,
)

K = 8

#: The fast-capable algorithms the issue names, with representative
#: constructor configurations (fast=True exercises snapshotting of the
#: array-backed state; adwise uses a fixed window to keep runs small).
SPECS = {
    "adwise": PartitionerSpec("adwise", {"fixed_window": 8}),
    "hdrf": PartitionerSpec("hdrf", {"fast": True}),
    "dbh": PartitionerSpec("dbh", {"fast": True}),
    "greedy": PartitionerSpec("greedy", {"fast": True}),
}


def random_edges(num_edges: int = 240, num_vertices: int = 60,
                 seed: int = 13):
    """Seeded uniform-random edge list (loops excluded)."""
    rng = random.Random(seed)
    edges = []
    while len(edges) < num_edges:
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u != v:
            edges.append(Edge(u, v))
    return edges


def powerlaw_edges(seed: int = 13):
    graph = barabasi_albert_graph(n=120, m=3, seed=seed)
    edges = list(graph.edges())
    random.Random(seed + 1).shuffle(edges)
    return edges


GRAPHS = {
    "random": random_edges,
    "powerlaw": powerlaw_edges,
}


def run_backend(spec, backend, stream, workers, spread=None):
    loader = ParallelLoader(spec, partitions=list(range(K)),
                            num_instances=workers, spread=spread,
                            backend=backend)
    return loader.run(stream)


def assert_identical(process, simulated):
    """The full differential contract between the two backends."""
    assert process.replica_sets == simulated.replica_sets
    assert process.partition_sizes == simulated.partition_sizes
    assert process.replication_degree == simulated.replication_degree
    assert process.imbalance == simulated.imbalance
    assert process.assignments == simulated.assignments
    assert process.latency_ms == simulated.latency_ms
    assert process.score_computations == simulated.score_computations


class TestProcessMatchesSimulated:
    @pytest.mark.parametrize("algorithm", sorted(SPECS))
    @pytest.mark.parametrize("workers", [2, 4, 8])
    @pytest.mark.parametrize("graph", sorted(GRAPHS))
    def test_differential(self, algorithm, workers, graph):
        edges = GRAPHS[graph]()
        results = [
            run_backend(SPECS[algorithm], backend,
                        InMemoryEdgeStream(edges), workers)
            for backend in BACKENDS
        ]
        simulated, process = results
        assert process.backend == "process"
        assert simulated.backend == "simulated"
        assert_identical(process, simulated)

    @pytest.mark.parametrize("algorithm", ["hdrf", "adwise"])
    def test_differential_on_file_chunks(self, algorithm, tmp_path):
        """File inputs are byte-chunked identically for both backends."""
        path = os.fspath(tmp_path / "graph.txt")
        write_edges(path, powerlaw_edges(seed=29))
        results = [
            run_backend(SPECS[algorithm], backend, FileEdgeStream(path),
                        workers=4)
            for backend in BACKENDS
        ]
        assert_identical(results[1], results[0])

    def test_run_file_equals_run_on_file_stream(self, tmp_path):
        path = os.fspath(tmp_path / "graph.txt")
        write_edges(path, random_edges(seed=31))
        loader = ParallelLoader(SPECS["hdrf"], partitions=list(range(K)),
                                num_instances=4, backend="process")
        via_stream = loader.run(FileEdgeStream(path))
        via_path = loader.run_file(path)
        assert_identical(via_path, via_stream)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_non_spotlight_spread(self, workers):
        """Maximal spread (spread = k) must also match across backends."""
        edges = powerlaw_edges(seed=17)
        simulated = run_backend(SPECS["dbh"], "simulated",
                                InMemoryEdgeStream(edges), workers, spread=K)
        process = run_backend(SPECS["dbh"], "process",
                              InMemoryEdgeStream(edges), workers, spread=K)
        assert_identical(process, simulated)


class TestProcessBackendContract:
    def test_unpicklable_factory_rejected_eagerly(self):
        with pytest.raises(ValueError, match="PartitionerSpec"):
            ParallelLoader(lambda parts, clock: None,
                           partitions=list(range(K)), num_instances=2,
                           backend="process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelLoader(SPECS["hdrf"], partitions=list(range(K)),
                           num_instances=2, backend="threads")

    def test_unknown_algorithm_spec_fails_loudly(self):
        spec = PartitionerSpec("does-not-exist")
        with pytest.raises(ValueError, match="unknown algorithm"):
            spec(list(range(K)), None)

    def test_max_workers_cap_does_not_change_results(self):
        edges = random_edges(seed=41)
        capped = ParallelLoader(SPECS["hdrf"], partitions=list(range(K)),
                                num_instances=4, backend="process",
                                max_workers=1)
        uncapped = ParallelLoader(SPECS["hdrf"], partitions=list(range(K)),
                                  num_instances=4, backend="process")
        assert_identical(capped.run(InMemoryEdgeStream(edges)),
                         uncapped.run(InMemoryEdgeStream(edges)))

    def test_chunk_count_mismatch_rejected(self):
        loader = ParallelLoader(SPECS["hdrf"], partitions=list(range(K)),
                                num_instances=4)
        with pytest.raises(ValueError, match="chunks"):
            loader.run_chunks([InMemoryEdgeStream([Edge(0, 1)])])


class TestMergedResult:
    def test_merged_snapshot_consistent_with_merge_fields(self):
        edges = powerlaw_edges(seed=23)
        result = run_backend(SPECS["greedy"], "process",
                             InMemoryEdgeStream(edges), workers=4)
        snap = result.merged_snapshot()
        assert snap.replica_sets() == result.replica_sets
        assert snap.partition_edges == result.partition_sizes
        assert snap.assigned_edges == len(edges)

    def test_to_partition_result_preserves_quality_metrics(self):
        edges = powerlaw_edges(seed=23)
        result = run_backend(SPECS["hdrf"], "process",
                             InMemoryEdgeStream(edges), workers=2)
        merged = result.to_partition_result()
        assert merged.replication_degree == result.replication_degree
        assert merged.imbalance == result.imbalance
        assert merged.assignments == result.assignments
        assert merged.state.assigned_edges == len(edges)
