"""Tests for ASCII chart rendering."""

from repro.bench.charts import grouped_bar_chart, line_chart, stacked_bar_chart
from repro.bench.harness import LatencyRow


def make_row(label, part, blocks):
    return LatencyRow(label=label, partitioning_ms=part,
                      block_ms=list(blocks), replication_degree=1.0,
                      imbalance=0.0, score_computations=0)


class TestStackedBars:
    def test_renders_all_rows(self):
        rows = [make_row("A", 10, [50, 50]), make_row("B", 30, [30, 30])]
        chart = stacked_bar_chart(rows, width=40, num_blocks=2)
        assert "A" in chart and "B" in chart
        assert "legend" in chart

    def test_segments_use_distinct_glyphs(self):
        rows = [make_row("A", 30, [30, 30])]
        chart = stacked_bar_chart(rows, width=30, num_blocks=2)
        bar_line = [l for l in chart.splitlines() if l.startswith("A")][0]
        assert "#" in bar_line and "*" in bar_line and "+" in bar_line

    def test_bar_lengths_proportional(self):
        rows = [make_row("big", 100, [0]), make_row("small", 50, [0])]
        chart = stacked_bar_chart(rows, width=40, num_blocks=1)
        lines = {l.split()[0]: l for l in chart.splitlines()
                 if l.startswith(("big", "small"))}
        assert lines["big"].count("#") > lines["small"].count("#")

    def test_empty_rows(self):
        assert stacked_bar_chart([], title="T") == "T"

    def test_title(self):
        chart = stacked_bar_chart([make_row("A", 1, [1])], title="Fig 7")
        assert chart.startswith("Fig 7")


class TestGroupedBars:
    def test_renders_series(self):
        series = {"HDRF": {4: 2.0, 32: 6.0}, "DBH": {4: 3.0, 32: 9.0}}
        chart = grouped_bar_chart(series, width=30)
        assert "HDRF:" in chart and "DBH:" in chart
        assert "spread=4" in chart and "spread=32" in chart

    def test_scaling_to_max(self):
        chart = grouped_bar_chart({"A": {1: 10.0, 2: 5.0}}, width=20)
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty(self):
        assert grouped_bar_chart({}, title="T") == "T"


class TestLineChart:
    def test_renders_points(self):
        chart = line_chart({0: 1.0, 50: 8.0, 100: 64.0}, width=30, height=8)
        assert chart.count("o") == 3
        assert "x: 0 .. 100" in chart

    def test_single_point(self):
        chart = line_chart({5: 5.0})
        assert "o" in chart

    def test_empty(self):
        assert line_chart({}, title="T") == "T"
