"""``repro.obs`` tests: registry semantics, span propagation, exporters.

The observability plane is global per process, so every test runs under
the ``clean_obs`` fixture: disabled, empty registry, empty tracer before
and after.  The cross-process tests are the load-bearing ones — they
assert that one enabled run yields ONE correlated trace across the
parallel-loading pickle boundary, the cluster worker pipes, and the
service ndjson protocol.
"""

from __future__ import annotations

import json
import os
import random
import threading

import pytest

from repro import obs
from repro.service.metrics import TenantMetrics, percentile

pytestmark = pytest.mark.usefixtures("clean_obs")


@pytest.fixture
def clean_obs():
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()
    yield
    obs.disable()
    obs.registry().reset()
    obs.tracer().clear()


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------

class TestRegistry:

    def test_counter_gauge_basics(self):
        obs.enable()
        c = obs.counter("repro_test_total", kind="a")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        g = obs.gauge("repro_test_level")
        g.set(7.0)
        g.inc(1.0)
        g.dec(3.0)
        assert g.value == 5.0

    def test_labels_create_distinct_series(self):
        obs.enable()
        obs.counter("repro_test_total", kind="a").inc()
        obs.counter("repro_test_total", kind="b").inc(4)
        # Same labels in any keyword order → the same series object.
        assert obs.counter("repro_test_total", kind="a") is obs.counter(
            "repro_test_total", kind="a")
        snap = obs.snapshot()
        values = {tuple(sorted(e["labels"].items())): e["value"]
                  for e in snap["counters"]
                  if e["name"] == "repro_test_total"}
        assert values == {(("kind", "a"),): 1.0, (("kind", "b"),): 4.0}

    def test_histogram_percentiles_exact(self):
        obs.enable()
        h = obs.histogram("repro_test_seconds")
        for value in [5, 1, 4, 2, 3]:
            h.observe(float(value))
        assert h.count == 5
        assert h.total == 15.0
        assert h.min == 1.0 and h.max == 5.0
        assert h.percentile(0.5) == 3.0
        assert h.percentile(0.99) == 5.0
        assert h.percentile(0.0) == 1.0

    def test_histogram_window_bounds_memory(self):
        obs.enable()
        h = obs.histogram("repro_test_window_seconds", window=8)
        for i in range(100):
            h.observe(float(i))
        assert h.count == 100          # cumulative count keeps growing
        assert len(h.samples()) == 8   # sample window stays bounded
        assert h.percentile(1.0) == 99.0

    def test_merge_snapshot_accumulates(self):
        obs.enable()
        obs.counter("repro_test_total").inc(2)
        obs.gauge("repro_test_level").set(3.0)
        h = obs.histogram("repro_test_seconds")
        h.observe(0.5)
        h.observe(1.5)
        snap = obs.snapshot()
        # Simulate receiving the same snapshot from a worker process.
        obs.merge_snapshot(snap)
        merged = obs.snapshot()
        counter = [e for e in merged["counters"]
                   if e["name"] == "repro_test_total"][0]
        assert counter["value"] == 4.0  # counters sum
        gauge = [e for e in merged["gauges"]
                 if e["name"] == "repro_test_level"][0]
        assert gauge["value"] == 3.0    # gauges last-write
        hist = [e for e in merged["histograms"]
                if e["name"] == "repro_test_seconds"][0]
        assert hist["count"] == 4
        assert hist["sum"] == 4.0

    def test_snapshot_survives_pickle_roundtrip(self):
        import pickle

        obs.enable()
        obs.counter("repro_test_total", src="worker").inc(9)
        obs.histogram("repro_test_seconds").observe(0.25)
        snap = pickle.loads(pickle.dumps(obs.snapshot()))
        obs.registry().reset()
        obs.merge_snapshot(snap)
        names = {e["name"] for e in obs.snapshot()["counters"]}
        assert "repro_test_total" in names


# ----------------------------------------------------------------------
# No-op mode: disabled must allocate nothing
# ----------------------------------------------------------------------

class TestNoopMode:

    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert os.environ.get("REPRO_OBS") is None

    def test_disabled_returns_shared_singletons(self):
        assert obs.counter("x", a="b") is obs.NOOP_COUNTER
        assert obs.gauge("y") is obs.NOOP_GAUGE
        assert obs.histogram("z") is obs.NOOP_HISTOGRAM
        assert obs.span("s", k=1) is obs.NOOP_SPAN
        # The full instrument API is accepted and inert.
        obs.counter("x").inc(5)
        obs.gauge("y").set(1.0)
        obs.histogram("z").observe(0.1)
        with obs.span("s"):
            pass
        assert obs.snapshot() == {"counters": [], "gauges": [],
                                  "histograms": []}
        assert obs.tracer().spans() == []

    def test_disabled_registry_untouched(self):
        obs.counter("repro_test_total").inc()
        assert obs.registry().snapshot()["counters"] == []

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.is_enabled()
        assert os.environ["REPRO_OBS"] == "1"
        obs.counter("repro_test_total").inc()
        obs.disable()
        assert not obs.is_enabled()
        assert "REPRO_OBS" not in os.environ
        assert obs.counter("repro_test_total") is obs.NOOP_COUNTER


# ----------------------------------------------------------------------
# Spans: nesting, context propagation, decorator
# ----------------------------------------------------------------------

class TestSpans:

    def test_nesting_parent_child(self):
        obs.enable()
        with obs.span("root") as root:
            with obs.span("child") as child:
                pass
        spans = obs.tracer().spans()
        assert [s["name"] for s in spans] == ["child", "root"]
        child_span, root_span = spans
        assert child_span["trace_id"] == root_span["trace_id"]
        assert child_span["parent_id"] == root_span["span_id"]
        assert root_span["parent_id"] is None
        assert root_span["dur_us"] >= child_span["dur_us"]
        assert root is not None and child is not None

    def test_sibling_spans_share_trace(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        spans = {s["name"]: s for s in obs.tracer().spans()}
        assert spans["a"]["trace_id"] == spans["b"]["trace_id"]
        assert spans["a"]["parent_id"] == spans["root"]["span_id"]
        assert spans["b"]["parent_id"] == spans["root"]["span_id"]

    def test_current_context_and_use_context(self):
        obs.enable()
        assert obs.current_context() is None
        with obs.span("root"):
            ctx = obs.current_context()
            assert set(ctx) == {"trace_id", "span_id"}
        # A "remote" process adopts the wire dict.
        with obs.use_context(ctx):
            with obs.span("remote"):
                pass
        remote = [s for s in obs.tracer().spans()
                  if s["name"] == "remote"][0]
        assert remote["trace_id"] == ctx["trace_id"]
        assert remote["parent_id"] == ctx["span_id"]

    def test_use_context_none_is_noop(self):
        obs.enable()
        with obs.use_context(None):
            with obs.span("solo"):
                pass
        solo = obs.tracer().spans()[0]
        assert solo["parent_id"] is None

    def test_error_recorded_and_reraised(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("bad")
        span = obs.tracer().spans()[0]
        assert span["error"] == "ValueError"

    def test_traced_decorator(self):
        calls = []

        @obs.traced("work.step", flavor="test")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(3) == 6            # disabled: no span, result intact
        assert obs.tracer().spans() == []
        obs.enable()
        assert work(4) == 8
        spans = obs.tracer().spans()
        assert [s["name"] for s in spans] == ["work.step"]
        assert spans[0]["attrs"] == {"flavor": "test"}
        assert calls == [3, 4]

    def test_sink_file_appends_jsonl(self, tmp_path):
        sink = str(tmp_path / "spans.jsonl")
        obs.enable(trace_file=sink)
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        loaded = obs.load_trace_jsonl(sink)
        assert [s["name"] for s in loaded] == ["a", "b"]
        assert all(s["pid"] == os.getpid() for s in loaded)


# ----------------------------------------------------------------------
# Cross-process propagation: the pickle + pipe + ndjson boundaries
# ----------------------------------------------------------------------

def _random_edges(n, vertices, seed):
    rng = random.Random(seed)
    pairs = [(rng.randrange(vertices), rng.randrange(vertices))
             for _ in range(n)]
    return [(u, v) for u, v in pairs if u != v]


class TestCrossProcess:

    def test_parallel_loading_one_trace(self, tmp_path):
        """PR-2 boundary: ProcessPoolExecutor workers join the trace."""
        from repro.graph.graph import Edge
        from repro.graph.stream import InMemoryEdgeStream
        from repro.partitioning.parallel import (
            ParallelLoader,
            PartitionerSpec,
        )

        sink = str(tmp_path / "spans.jsonl")
        obs.enable(trace_file=sink)
        edges = [Edge(u, v) for u, v in _random_edges(300, 60, seed=5)]
        loader = ParallelLoader(
            PartitionerSpec("hdrf", {}), partitions=list(range(8)),
            num_instances=2, backend="process")
        with obs.span("test.root"):
            loader.run(InMemoryEdgeStream(edges))
        spans = obs.load_trace_jsonl(sink)
        root = [s for s in spans if s["name"] == "test.root"][0]
        instances = [s for s in spans
                     if s["name"] == "partition.parallel_instance"]
        assert len(instances) == 2
        assert {s["trace_id"] for s in spans} == {root["trace_id"]}
        # Workers are other processes, yet parent ids resolve into the
        # submitting process's spans.
        assert any(s["pid"] != os.getpid() for s in instances)
        by_id = {s["span_id"]: s for s in spans}
        for span in instances:
            assert span["parent_id"] in by_id
        # Worker ingest spans nest under the instance span.
        worker_ingests = [s for s in spans
                          if s["name"] == "partition.ingest"
                          and s["pid"] != os.getpid()]
        assert worker_ingests
        tree = obs.render_tree(spans)
        assert "test.root" in tree and "partition.parallel_instance" in tree

    def test_cluster_process_backend_one_trace(self, tmp_path):
        """PR-4 boundary: cluster worker pipes carry the step context."""
        from repro.cluster import ClusterEngine
        from repro.engine.algorithms import ConnectedComponents
        from repro.graph.generators import barabasi_albert_graph
        from repro.graph.shard import ShardedGraph
        from repro.partitioning.hashing import HashPartitioner
        from repro.graph.stream import shuffled

        sink = str(tmp_path / "spans.jsonl")
        obs.enable(trace_file=sink)
        graph = barabasi_albert_graph(n=60, m=2, seed=7)
        result = HashPartitioner(list(range(4))).partition_stream(
            shuffled(list(graph.edges()), seed=3))
        sharded = ShardedGraph.from_assignments(
            result.assignments, partitions=range(4),
            vertices=graph.vertices())
        engine = ClusterEngine(sharded, backend="process", num_workers=2)
        with obs.span("test.root"):
            engine.run(ConnectedComponents(), max_supersteps=30)
        spans = obs.load_trace_jsonl(sink)
        root = [s for s in spans if s["name"] == "test.root"][0]
        worker_steps = [s for s in spans
                        if s["name"] == "cluster.worker_step"]
        assert worker_steps
        assert any(s["pid"] != os.getpid() for s in worker_steps)
        assert {s["trace_id"] for s in worker_steps} == {root["trace_id"]}
        supersteps = [s for s in spans if s["name"] == "cluster.superstep"]
        assert supersteps
        superstep_ids = {s["span_id"] for s in supersteps}
        assert all(s["parent_id"] in superstep_ids for s in worker_steps)

    def test_service_protocol_one_trace(self, tmp_path):
        """PR-6 boundary: the ndjson ``trace`` field correlates the
        client's span with the daemon's apply span."""
        from repro.service.client import ServiceClient
        from repro.service.server import run_service

        sink = str(tmp_path / "spans.jsonl")
        obs.enable(trace_file=sink)
        ready = threading.Event()
        box = {}

        def on_ready(service):
            box["port"] = service.port
            ready.set()

        thread = threading.Thread(
            target=run_service,
            kwargs=dict(port=0, queue_depth=4, max_tenants=2,
                        ready_callback=on_ready),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        with ServiceClient(port=box["port"]) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            with obs.span("test.ingest"):
                client.ingest("t", _random_edges(64, 30, seed=9))
            client.finalize("t")
            client.shutdown()
        thread.join(10)
        spans = obs.load_trace_jsonl(sink)
        ingest = [s for s in spans if s["name"] == "test.ingest"][0]
        applies = [s for s in spans
                   if s["name"] == "service.apply_batch"]
        assert applies
        assert all(s["trace_id"] == ingest["trace_id"] for s in applies)
        assert all(s["parent_id"] == ingest["span_id"] for s in applies)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

GOLDEN_PROM = """\
# TYPE repro_test_total counter
repro_test_total{kind="a"} 3
# TYPE repro_test_level gauge
repro_test_level 2.5
# TYPE repro_test_seconds histogram
repro_test_seconds_bucket{le="1"} 1
repro_test_seconds_bucket{le="10"} 2
repro_test_seconds_bucket{le="+Inf"} 3
repro_test_seconds_sum 114.5
repro_test_seconds_count 3
repro_test_seconds{quantile="0.5"} 3.5
repro_test_seconds{quantile="0.99"} 110.5
"""


class TestExporters:

    @staticmethod
    def _populate():
        obs.enable()
        obs.counter("repro_test_total", kind="a").inc(3)
        obs.gauge("repro_test_level").set(2.5)
        h = obs.histogram("repro_test_seconds", bounds=[1.0, 10.0])
        for value in (0.5, 3.5, 110.5):
            h.observe(value)

    def test_prometheus_text_golden(self):
        self._populate()
        assert obs.prometheus_text(obs.registry()) == GOLDEN_PROM

    def test_prometheus_text_from_snapshot(self):
        self._populate()
        assert obs.prometheus_text(obs.snapshot()) == GOLDEN_PROM

    def test_prometheus_label_escaping(self):
        obs.enable()
        obs.counter("repro_test_total", path='a"b\\c').inc()
        text = obs.prometheus_text(obs.registry())
        assert 'path="a\\"b\\\\c"' in text

    def test_registry_jsonl_roundtrip(self, tmp_path):
        self._populate()
        path = str(tmp_path / "metrics.jsonl")
        obs.dump_jsonl(obs.registry(), path)
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        kinds = {r["kind"] for r in records}
        assert kinds == {"counter", "gauge", "histogram"}
        hist = [r for r in records if r["kind"] == "histogram"][0]
        assert hist["count"] == 3
        assert hist["samples"] == [0.5, 3.5, 110.5]

    def test_chrome_trace_loads_as_json(self, tmp_path):
        obs.enable()
        with obs.span("root", phase="x"):
            with obs.span("child"):
                pass
        path = str(tmp_path / "trace.json")
        obs.write_chrome_trace(path, obs.tracer().spans())
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        events = payload["traceEvents"]
        assert {e["name"] for e in events} == {"root", "child"}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 1
            assert "trace_id" in event["args"]
        root = [e for e in events if e["name"] == "root"][0]
        assert root["args"]["phase"] == "x"

    def test_render_tree_nesting_and_orphans(self):
        obs.enable()
        with obs.span("root"):
            with obs.span("child"):
                pass
        spans = list(obs.tracer().spans())
        spans.append({"name": "remote", "trace_id": spans[0]["trace_id"],
                      "span_id": "ffff-1", "parent_id": "dead-0",
                      "pid": 999, "tid": 0, "ts_us": 0, "dur_us": 5})
        tree = obs.render_tree(spans)
        lines = tree.splitlines()
        root_line = [ln for ln in lines if ln.lstrip().startswith("root")][0]
        child_line = [ln for ln in lines
                      if ln.lstrip().startswith("child")][0]
        indent = lambda ln: len(ln) - len(ln.lstrip())  # noqa: E731
        assert indent(child_line) > indent(root_line)
        assert "[remote-parent dead-0]" in tree


# ----------------------------------------------------------------------
# Percentile edge cases + service.metrics parity (satellite 1)
# ----------------------------------------------------------------------

class TestPercentile:

    def test_empty_and_single(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_fraction_clamping(self):
        samples = [1.0, 2.0, 3.0]
        assert percentile(samples, -0.5) == 1.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 3.0
        assert percentile(samples, 1.5) == 3.0

    def test_nearest_rank_semantics(self):
        samples = [10.0, 20.0]
        assert percentile(samples, 0.5) == 10.0   # ceil(0.5*2)=1 → idx 0
        assert percentile(samples, 0.51) == 20.0
        assert percentile(list(range(1, 101)), 0.99) == 99

    def test_unsorted_input_ok(self):
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0

    def test_matches_obs_histogram(self):
        rng = random.Random(11)
        samples = [rng.uniform(0.0, 50.0) for _ in range(257)]
        h = obs.Histogram(window=1024)
        for s in samples:
            h.observe(s)
        for fraction in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert percentile(samples, fraction) == h.percentile(fraction)

    def test_tenant_metrics_delegates(self):
        clock = iter(float(i) for i in range(100))
        metrics = TenantMetrics(capacity=4, clock=lambda: next(clock))
        for latency_ms in (10.0, 20.0, 30.0):
            metrics.observe_batch(8, latency_ms / 1000.0)
        assert metrics.latency_percentile_ms(0.5) == 20.0
        assert metrics.latency_histogram.count == 3
        d = metrics.to_dict()
        assert d["metrics_window"] == 4
        assert d["p99_ingest_ms"] == 30.0


# ----------------------------------------------------------------------
# Serve knobs: audit depth + metrics window (satellite 2)
# ----------------------------------------------------------------------

class TestServeKnobs:

    def test_flags_reach_tenant_state(self):
        from repro.service.client import ServiceClient
        from repro.service.server import run_service

        ready = threading.Event()
        box = {}

        def on_ready(service):
            box["port"] = service.port
            ready.set()

        thread = threading.Thread(
            target=run_service,
            kwargs=dict(port=0, queue_depth=4, max_tenants=2,
                        audit_depth=5, metrics_window=3,
                        ready_callback=on_ready),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        with ServiceClient(port=box["port"]) as client:
            client.open("t", algorithm="hdrf", partitions=4)
            for start in range(0, 80, 10):
                client.ingest("t", [(i, i + 1)
                                    for i in range(start, start + 9)])
            stats = client.stats("t")
            assert stats["audit"]["capacity"] == 5
            assert stats["audit"]["retained"] <= 5
            assert stats["audit"]["recorded"] > 5
            assert stats["audit"]["dropped"] == (
                stats["audit"]["recorded"] - stats["audit"]["retained"])
            assert stats["metrics"]["metrics_window"] == 3
            text = client.metrics_text()
            client.shutdown()
        thread.join(10)
        assert "# TYPE repro_tenant_ingest_latency_seconds histogram" in text
        assert 'repro_tenant_edges_ingested_total{tenant="t"} 72' in text

    def test_cli_flag_validation(self, capsys):
        from repro.cli import main

        assert main(["serve", "--audit-depth", "0"]) == 2
        assert "audit-depth" in capsys.readouterr().err
        assert main(["serve", "--metrics-window", "0"]) == 2

    def test_service_rejects_bad_knobs(self):
        from repro.service.server import PartitionService

        with pytest.raises(ValueError):
            PartitionService(audit_depth=0)
        with pytest.raises(ValueError):
            PartitionService(metrics_window=0)


# ----------------------------------------------------------------------
# CLI top view
# ----------------------------------------------------------------------

class TestTopView:

    def test_parse_and_render(self, capsys):
        from repro.cli import _parse_prometheus, _render_top

        text = ("# TYPE repro_service_uptime_seconds gauge\n"
                "repro_service_uptime_seconds 12.5\n"
                'repro_tenant_edges_per_second{tenant="t1"} 1500\n'
                'repro_tenant_ingest_latency_seconds'
                '{quantile="0.99",tenant="t1"} 0.004\n')
        series = _parse_prometheus(text)
        assert series[("repro_service_uptime_seconds", ())] == 12.5
        _render_top(text, [
            {"tenant": "t1", "algorithm": "hdrf", "edges_ingested": 640,
             "queue_depth": 1, "applied_seq": 10, "durable": True}])
        out = capsys.readouterr().out
        assert "up 12.5s" in out
        assert "t1" in out and "1500" in out and "4.00" in out

    def test_top_against_live_daemon(self, capsys):
        from repro.cli import main
        from repro.service.client import ServiceClient
        from repro.service.server import run_service

        ready = threading.Event()
        box = {}

        def on_ready(service):
            box["port"] = service.port
            ready.set()

        thread = threading.Thread(
            target=run_service,
            kwargs=dict(port=0, queue_depth=4, max_tenants=2,
                        ready_callback=on_ready),
            daemon=True)
        thread.start()
        assert ready.wait(10)
        port = str(box["port"])
        with ServiceClient(port=box["port"]) as client:
            client.open("cli-t", algorithm="hdrf", partitions=4)
            client.ingest("cli-t", _random_edges(50, 20, seed=3))
            assert main(["top", "--port", port]) == 0
            table = capsys.readouterr().out
            assert "cli-t" in table and "hdrf" in table
            assert main(["top", "--port", port, "--raw"]) == 0
            raw = capsys.readouterr().out
            assert "# TYPE repro_service_tenants gauge" in raw
            client.shutdown()
        thread.join(10)


# ----------------------------------------------------------------------
# Instrumented subsystems publish into the registry when enabled
# ----------------------------------------------------------------------

class TestInstrumentation:

    def test_partitioner_publishes_series(self):
        from repro.core.adwise import AdwisePartitioner
        from repro.graph.graph import Edge
        from repro.graph.stream import InMemoryEdgeStream

        obs.enable()
        partitioner = AdwisePartitioner(
            list(range(4)), fast=True, fixed_window=16,
            window_backend="array")
        edges = [Edge(u, v) for u, v in _random_edges(200, 40, seed=21)]
        partitioner.partition_stream(InMemoryEdgeStream(edges))
        snap = obs.snapshot()
        counters = {e["name"] for e in snap["counters"]}
        gauges = {e["name"] for e in snap["gauges"]}
        assert "repro_partition_edges_total" in counters
        assert "repro_window_refills_total" in counters
        assert "repro_window_pops_total" in counters
        assert "repro_partition_replication_degree" in gauges
        assert "repro_window_memo_hit_rate" in gauges
        hit_rates = [e["value"] for e in snap["gauges"]
                     if e["name"] == "repro_window_memo_hit_rate"]
        assert all(0.0 <= v <= 1.0 for v in hit_rates)
        spans = {s["name"] for s in obs.tracer().spans()}
        assert {"partition.ingest", "partition.finalize"} <= spans

    def test_disabled_run_stays_silent(self):
        from repro.core.adwise import AdwisePartitioner
        from repro.graph.graph import Edge
        from repro.graph.stream import InMemoryEdgeStream

        partitioner = AdwisePartitioner(
            list(range(4)), fast=True, fixed_window=16)
        edges = [Edge(u, v) for u, v in _random_edges(120, 30, seed=22)]
        partitioner.partition_stream(InMemoryEdgeStream(edges))
        assert obs.snapshot() == {"counters": [], "gauges": [],
                                  "histograms": []}
        assert obs.tracer().spans() == []

    def test_engine_publishes_superstep_series(self):
        from repro.engine.algorithms import ConnectedComponents
        from repro.engine.placement import Placement
        from repro.engine.runtime import Engine
        from repro.graph.generators import barabasi_albert_graph
        from repro.partitioning.hashing import HashPartitioner
        from repro.graph.stream import shuffled

        obs.enable()
        graph = barabasi_albert_graph(n=40, m=2, seed=5)
        result = HashPartitioner(list(range(4))).partition_stream(
            shuffled(list(graph.edges()), seed=3))
        placement = Placement(result.assignments, list(range(4)),
                              num_machines=2)
        report = Engine(graph, placement, mode="dense").run(
            ConnectedComponents(), max_supersteps=30)
        counters = {(e["name"], e["labels"].get("mode")): e["value"]
                    for e in obs.snapshot()["counters"]}
        key = ("repro_engine_supersteps_total", "dense")
        assert counters[key] == float(report.supersteps)
        assert ("repro_engine_messages_total", "dense") in counters

    def test_wal_publishes_append_series(self, tmp_path):
        from repro.service.wal import TenantWAL

        obs.enable()
        wal = TenantWAL(str(tmp_path / "t.wal"), {"tenant": "t"},
                        fsync="always")
        wal.append(1, [(1, 2)])
        wal.append(2, [(3, 4)])
        wal.close()
        counters = {e["name"]: e["value"]
                    for e in obs.snapshot()["counters"]}
        assert counters["repro_wal_appends_total"] == 2.0
        assert counters["repro_wal_fsyncs_total"] >= 1.0
        assert counters["repro_wal_bytes_total"] > 0.0
