"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.graph import Edge, Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    community_powerlaw_graph,
    powerlaw_cluster_graph,
    web_like_graph,
)
from repro.graph.stream import InMemoryEdgeStream, shuffled


@pytest.fixture
def triangle() -> Graph:
    """The smallest clustered graph: a single triangle."""
    return Graph([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def star() -> Graph:
    """Star graph: one hub (0) and five spokes."""
    return Graph([(0, i) for i in range(1, 6)])


@pytest.fixture
def path_graph() -> Graph:
    """Path 0-1-2-3-4."""
    return Graph([(i, i + 1) for i in range(4)])


@pytest.fixture
def two_triangles() -> Graph:
    """Two triangles sharing vertex 0 — a classic vertex-cut scenario."""
    return Graph([(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)])


@pytest.fixture
def small_powerlaw() -> Graph:
    """A small skewed graph for partitioner behaviour tests."""
    return barabasi_albert_graph(n=200, m=3, seed=11)


@pytest.fixture
def small_clustered() -> Graph:
    """A small clustered graph (exercises the clustering score)."""
    return powerlaw_cluster_graph(n=200, m=3, p=0.9, seed=11)


@pytest.fixture
def small_web() -> Graph:
    """A small community graph (web analogue)."""
    return web_like_graph(num_communities=12, community_size=8, seed=11)


@pytest.fixture
def dense_community() -> Graph:
    """A dense community graph with hub overlay (spotlight-effect tests).

    The spotlight effect needs realistic density (vertices with many edges
    per chunk) and stream locality, so this fixture is denser than the
    others and is streamed in adjacency order.
    """
    return community_powerlaw_graph(num_communities=12, community_size=40,
                                    intra_p=0.5, overlay_m=3, seed=11)


@pytest.fixture
def small_stream(small_powerlaw: Graph) -> InMemoryEdgeStream:
    return shuffled(small_powerlaw.edges(), seed=3)
