"""Unit tests for the core graph data structures."""

import pytest

from repro.graph.graph import Edge, Graph


class TestEdge:
    def test_canonical_orders_endpoints(self):
        assert Edge(5, 2).canonical() == Edge(2, 5)

    def test_canonical_is_identity_when_ordered(self):
        edge = Edge(2, 5)
        assert edge.canonical() is edge

    def test_other_returns_opposite_endpoint(self):
        edge = Edge(1, 2)
        assert edge.other(1) == 2
        assert edge.other(2) == 1

    def test_other_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            Edge(1, 2).other(3)

    def test_is_loop(self):
        assert Edge(3, 3).is_loop()
        assert not Edge(3, 4).is_loop()

    def test_edge_equality_and_hash(self):
        assert Edge(1, 2) == Edge(1, 2)
        assert Edge(1, 2) != Edge(2, 1)
        assert hash(Edge(1, 2)) == hash(Edge(1, 2))


class TestGraph:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge_creates_vertices(self):
        graph = Graph()
        assert graph.add_edge(1, 2)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1

    def test_duplicate_edge_not_counted(self):
        graph = Graph()
        assert graph.add_edge(1, 2)
        assert not graph.add_edge(1, 2)
        assert not graph.add_edge(2, 1)
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add_edge(3, 3)

    def test_constructor_from_edges(self):
        graph = Graph([(0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(2, 1)

    def test_add_vertex_isolated(self):
        graph = Graph()
        graph.add_vertex(7)
        assert graph.has_vertex(7)
        assert graph.degree(7) == 0
        assert graph.num_edges == 0

    def test_neighbors(self, star):
        assert star.neighbors(0) == {1, 2, 3, 4, 5}
        assert star.neighbors(3) == {0}

    def test_degree(self, star):
        assert star.degree(0) == 5
        assert star.degree(1) == 1

    def test_edges_yields_canonical_once(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(e.u < e.v for e in edges)
        assert set(edges) == {Edge(0, 1), Edge(1, 2), Edge(0, 2)}

    def test_edge_list_matches_edges(self, two_triangles):
        assert set(two_triangles.edge_list()) == set(two_triangles.edges())

    def test_contains(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle

    def test_subgraph_induced(self, two_triangles):
        sub = two_triangles.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert not sub.has_edge(0, 3)

    def test_subgraph_keeps_isolated_members(self, two_triangles):
        sub = two_triangles.subgraph([1, 4])
        assert sub.num_vertices == 2
        assert sub.num_edges == 0

    def test_has_edge_unknown_vertices(self):
        graph = Graph([(0, 1)])
        assert not graph.has_edge(5, 6)

    def test_vertices_iteration(self, path_graph):
        assert set(path_graph.vertices()) == {0, 1, 2, 3, 4}
