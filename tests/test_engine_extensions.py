"""Tests for engine extensions: combiners, aggregators, new algorithms."""

import pytest

from repro.graph.graph import Graph
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.vertex_program import VertexProgram
from repro.engine.algorithms import (
    KCore,
    LabelPropagation,
    PageRank,
    TriangleCount,
)


def engine_for(graph: Graph, k: int = 4, machines: int = 2) -> Engine:
    assignments = {e: hash((e.u, e.v)) % k for e in graph.edges()}
    placement = Placement(assignments, partitions=list(range(k)),
                          num_machines=machines)
    return Engine(graph, placement)


class TestCombiner:
    def test_pagerank_combiner_reduces_inbox_not_result(self, small_powerlaw):
        """Combined messages must not change PageRank's fixed point."""

        class UncombinedPageRank(PageRank):
            combine = VertexProgram.combine  # opt back out

        engine = engine_for(small_powerlaw)
        combined = engine.run(PageRank(iterations=10), max_supersteps=12)
        plain = engine.run(UncombinedPageRank(iterations=10),
                           max_supersteps=12)
        for vertex, rank in combined.states.items():
            assert rank == pytest.approx(plain.states[vertex], rel=1e-9)

    def test_combiner_collapses_messages(self, triangle):
        """With a sum combiner each vertex gets exactly one message."""
        received = []

        class Probe(PageRank):
            def compute(self, vertex, state, messages, neighbors, ctx):
                if ctx.superstep == 1:
                    received.append(len(messages))
                return super().compute(vertex, state, messages,
                                       neighbors, ctx)

        engine_for(triangle).run(Probe(iterations=2), max_supersteps=3)
        assert received and all(n == 1 for n in received)


class TestAggregator:
    def test_aggregates_recorded_per_superstep(self, triangle):
        class CountActive(VertexProgram):
            name = "count"

            def initial_state(self, vertex, degree):
                return 0

            def compute(self, vertex, state, messages, neighbors, ctx):
                if ctx.superstep == 0:
                    ctx.send_all(neighbors, 1)
                ctx.vote_halt()
                return state

            def aggregate(self, vertex, state):
                return 1

        report = engine_for(triangle).run(CountActive(), max_supersteps=5)
        assert report.aggregates[0] == 3  # all vertices computed step 0

    def test_should_stop_terminates_early(self, triangle):
        class StopAfterTwo(VertexProgram):
            name = "stopper"

            def initial_state(self, vertex, degree):
                return 0

            def compute(self, vertex, state, messages, neighbors, ctx):
                ctx.send_all(neighbors, 0)  # chatter forever
                return state

            def aggregate(self, vertex, state):
                return 1

            def should_stop(self, aggregate, superstep):
                return superstep >= 2

        report = engine_for(triangle).run(StopAfterTwo(), max_supersteps=50)
        assert report.supersteps == 2
        assert report.converged


class TestLabelPropagation:
    def test_two_cliques_two_communities(self):
        graph = Graph()
        for block in (range(0, 5), range(10, 15)):
            members = list(block)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    graph.add_edge(a, b)
        graph.add_edge(4, 10)  # single bridge
        report = engine_for(graph).run(LabelPropagation(), max_supersteps=30)
        labels = report.states
        assert len({labels[v] for v in range(0, 5)}) == 1
        assert len({labels[v] for v in range(10, 15)}) == 1

    def test_converges_and_stops_early(self, small_web):
        report = engine_for(small_web).run(LabelPropagation(max_iterations=40),
                                           max_supersteps=45)
        assert report.converged
        assert report.supersteps < 40

    def test_validation(self):
        with pytest.raises(ValueError):
            LabelPropagation(max_iterations=0)


class TestKCore:
    def test_clique_is_its_own_core(self):
        k4 = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        report = engine_for(k4).run(KCore(k=3), max_supersteps=10)
        assert KCore.members(report.states) == [0, 1, 2, 3]

    def test_tree_has_no_2core(self, star):
        report = engine_for(star).run(KCore(k=2), max_supersteps=10)
        assert KCore.members(report.states) == []

    def test_peeling_cascades(self):
        # Triangle with a pendant path: 2-core is exactly the triangle.
        graph = Graph([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        report = engine_for(graph).run(KCore(k=2), max_supersteps=10)
        assert KCore.members(report.states) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            KCore(k=0)


class TestTriangleCount:
    def test_single_triangle(self, triangle):
        report = engine_for(triangle).run(TriangleCount(), max_supersteps=5)
        assert TriangleCount.total(report.states) == 1

    def test_star_has_none(self, star):
        report = engine_for(star).run(TriangleCount(), max_supersteps=5)
        assert TriangleCount.total(report.states) == 0

    def test_k4_has_four(self):
        k4 = Graph([(a, b) for a in range(4) for b in range(a + 1, 4)])
        report = engine_for(k4).run(TriangleCount(), max_supersteps=5)
        assert TriangleCount.total(report.states) == 4

    def test_matches_clustering_math(self, small_clustered):
        """Cross-check against direct adjacency-set counting."""
        direct = 0
        for e in small_clustered.edges():
            common = (small_clustered.neighbors(e.u)
                      & small_clustered.neighbors(e.v))
            direct += len(common)
        direct //= 3
        report = engine_for(small_clustered).run(TriangleCount(),
                                                 max_supersteps=5)
        assert TriangleCount.total(report.states) == direct
