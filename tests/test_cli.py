"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import write_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_graph(path, barabasi_albert_graph(120, 3, seed=1))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.algorithm == "adwise"
        assert args.partitions == 32
        assert args.latency_preference is None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "g.txt", "--algorithm", "magic"])


class TestPartitionCommand:
    @pytest.mark.parametrize("algorithm",
                             ["hash", "grid", "dbh", "hdrf", "greedy",
                              "adwise"])
    def test_each_algorithm_runs(self, graph_file, capsys, algorithm):
        code = main(["partition", graph_file, "--algorithm", algorithm,
                     "--partitions", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replication degree:" in out
        assert "imbalance:" in out

    def test_adwise_latency_preference(self, graph_file, capsys):
        code = main(["partition", graph_file, "--latency-preference", "20",
                     "--partitions", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max_window" in out

    def test_no_clustering_flag(self, graph_file, capsys):
        code = main(["partition", graph_file, "--no-clustering",
                     "--partitions", "4"])
        assert code == 0

    def test_output_file_written(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "assignments.txt"
        code = main(["partition", graph_file, "--partitions", "4",
                     "--output", str(out_path)])
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            u, v, p = line.split()
            assert 0 <= int(p) < 4

    def test_wall_clock_mode(self, graph_file, capsys):
        code = main(["partition", graph_file, "--wall-clock",
                     "--partitions", "4", "--algorithm", "hdrf"])
        assert code == 0
        assert "(wall)" in capsys.readouterr().out


class TestParallelPartition:
    def test_workers_backends_identical_output(self, graph_file, tmp_path,
                                               capsys):
        outputs = {}
        for backend in ("process", "simulated"):
            out = tmp_path / f"{backend}.txt"
            code = main(["partition", graph_file, "--algorithm", "hdrf",
                         "--partitions", "8", "--workers", "4",
                         "--backend", backend, "--output", str(out)])
            assert code == 0
            assert f"backend:            {backend}" \
                in capsys.readouterr().out
            outputs[backend] = out.read_text()
        assert outputs["process"] == outputs["simulated"]

    def test_spread_flag_passed_through(self, graph_file, capsys):
        code = main(["partition", graph_file, "--algorithm", "dbh",
                     "--partitions", "8", "--workers", "2",
                     "--backend", "simulated", "--spread", "8"])
        assert code == 0
        assert "spread 8" in capsys.readouterr().out

    def test_parallel_flags_without_workers_rejected(self, graph_file,
                                                     capsys):
        for flags in (["--spread", "4"], ["--backend", "simulated"]):
            code = main(["partition", graph_file, "--algorithm", "hdrf",
                         "--partitions", "8"] + flags)
            assert code == 2
            assert "--workers" in capsys.readouterr().err

    def test_invalid_worker_count_rejected(self, graph_file, capsys):
        code = main(["partition", graph_file, "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_indivisible_default_spread_reported(self, graph_file, capsys):
        code = main(["partition", graph_file, "--algorithm", "hdrf",
                     "--partitions", "7", "--workers", "2",
                     "--backend", "simulated"])
        assert code == 2
        assert "spread" in capsys.readouterr().err


class TestStatsCommand:
    def test_prints_summary_row(self, graph_file, capsys):
        code = main(["stats", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "c-hat" in out
        assert "120" in out


@pytest.fixture
def assignments_file(graph_file, tmp_path, capsys):
    path = str(tmp_path / "g.parts")
    assert main(["partition", graph_file, "--algorithm", "hdrf",
                 "--partitions", "4", "--output", path]) == 0
    capsys.readouterr()
    return path


class TestProcessCommand:
    def test_simulated_run(self, graph_file, assignments_file, capsys):
        code = main(["process", graph_file, assignments_file,
                     "--workload", "pagerank", "--iterations", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated latency:" in out
        assert "mode:                dense" in out

    def test_cluster_serial_run(self, graph_file, assignments_file,
                                capsys):
        code = main(["process", graph_file, assignments_file,
                     "--workload", "components", "--cluster"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster (serial" in out
        assert "measured wall:" in out
        assert "sync messages:" in out

    def test_cluster_process_run(self, graph_file, assignments_file,
                                 capsys):
        code = main(["process", graph_file, assignments_file,
                     "--workload", "pagerank", "--iterations", "4",
                     "--cluster", "--cluster-backend", "process",
                     "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster (process" in out
        assert "2 machines" in out

    def test_cluster_fallback_noted(self, graph_file, assignments_file,
                                    capsys):
        code = main(["process", graph_file, assignments_file,
                     "--workload", "coloring", "--iterations", "10",
                     "--cluster"])
        assert code == 0
        assert "unsharded fallback" in capsys.readouterr().out

    def test_workers_without_process_backend_rejected(
            self, graph_file, assignments_file, capsys):
        code = main(["process", graph_file, assignments_file,
                     "--cluster", "--workers", "2"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_cluster_backend_without_cluster_rejected(
            self, graph_file, assignments_file, capsys):
        code = main(["process", graph_file, assignments_file,
                     "--cluster-backend", "process"])
        assert code == 2
        assert "--cluster-backend" in capsys.readouterr().err

    def test_zero_workers_rejected(self, graph_file, assignments_file,
                                   capsys):
        code = main(["process", graph_file, assignments_file,
                     "--cluster", "--cluster-backend", "process",
                     "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_mode_with_cluster_rejected(self, graph_file,
                                        assignments_file, capsys):
        code = main(["process", graph_file, assignments_file,
                     "--cluster", "--mode", "object"])
        assert code == 2
        assert "--mode" in capsys.readouterr().err

    def test_machines_with_process_cluster_rejected(
            self, graph_file, assignments_file, capsys):
        code = main(["process", graph_file, assignments_file,
                     "--cluster", "--cluster-backend", "process",
                     "--machines", "4"])
        assert code == 2
        assert "--machines" in capsys.readouterr().err

    def test_pipeline_validates_flags_before_partitioning(
            self, graph_file, capsys):
        """Static flag errors must fire before the (expensive)
        partitioning stage runs."""
        code = main(["pipeline", graph_file, "--partitions", "4",
                     "--workers", "2"])
        assert code == 2
        out, err = capsys.readouterr()
        assert "--workers" in err
        assert "partitioned:" not in out

    def test_cluster_matches_simulated_metrics(
            self, graph_file, assignments_file, capsys):
        """Same workload: supersteps/messages/simulated latency agree
        between the simulator and the sharded runtime."""
        assert main(["process", graph_file, assignments_file,
                     "--workload", "components"]) == 0
        simulated = capsys.readouterr().out
        assert main(["process", graph_file, assignments_file,
                     "--workload", "components", "--cluster"]) == 0
        cluster = capsys.readouterr().out

        def metric(text, name):
            for line in text.splitlines():
                if line.startswith(name):
                    # Value only ("15.66 ms (8 machines)" -> "15.66").
                    return line.split(":", 1)[1].strip().split(" ")[0]
            raise AssertionError(f"{name} not in output")

        for name in ("supersteps", "messages sent", "simulated latency"):
            assert metric(simulated, name) == metric(cluster, name)


class TestPipelineCommand:
    def test_chains_partition_and_process(self, graph_file, tmp_path,
                                          capsys):
        out_path = str(tmp_path / "pipeline.parts")
        code = main(["pipeline", graph_file, "--algorithm", "hdrf",
                     "--partitions", "4", "--workload", "pagerank",
                     "--iterations", "5", "--output", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "partitioned:" in out
        assert f"assignments written: {out_path}" in out
        assert "simulated latency:" in out
        # The persisted file round-trips through the process command.
        assert main(["process", graph_file, out_path]) == 0

    def test_cluster_pipeline_with_gz(self, graph_file, tmp_path, capsys):
        out_path = str(tmp_path / "pipeline.parts.gz")
        code = main(["pipeline", graph_file, "--algorithm", "adwise",
                     "--partitions", "4", "--workload", "components",
                     "--cluster", "--output", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster (serial" in out
        import gzip
        with gzip.open(out_path, "rt") as handle:
            assert "# algorithm=adwise" in handle.readline()

    def test_parallel_loading_stage(self, graph_file, tmp_path, capsys):
        code = main(["pipeline", graph_file, "--algorithm", "hdrf",
                     "--partitions", "4", "--load-workers", "2",
                     "--output", str(tmp_path / "p.parts"),
                     "--workload", "components", "--cluster"])
        assert code == 0
        assert "cluster (serial" in capsys.readouterr().out

    def test_default_output_next_to_input(self, graph_file, capsys):
        code = main(["pipeline", graph_file, "--algorithm", "hash",
                     "--partitions", "4", "--workload", "components"])
        assert code == 0
        assert f"{graph_file}.parts" in capsys.readouterr().out

    def test_fast_unsupported_algorithm_rejected(self, graph_file,
                                                 capsys):
        code = main(["pipeline", graph_file, "--algorithm", "hash",
                     "--fast", "--partitions", "4"])
        assert code == 2
        assert "--fast" in capsys.readouterr().err

    def test_spread_without_load_workers_rejected(self, graph_file,
                                                  capsys):
        code = main(["pipeline", graph_file, "--partitions", "4",
                     "--spread", "2"])
        assert code == 2
        assert "--load-workers" in capsys.readouterr().err


class TestServeAndClient:
    """serve + client subcommands against a real daemon."""

    def _boot(self, extra_args=None):
        """Start a daemon thread directly (run_service is what the
        serve subcommand wraps); returns (port, thread)."""
        import threading

        from repro.service.server import run_service

        ready = threading.Event()
        box = {}

        def on_ready(service):
            box["port"] = service.port
            ready.set()

        kwargs = dict(port=0, ready_callback=on_ready)
        kwargs.update(extra_args or {})
        thread = threading.Thread(target=run_service, kwargs=kwargs,
                                  daemon=True)
        thread.start()
        assert ready.wait(10), "daemon did not come up"
        return box["port"], thread

    def _shutdown(self, port, thread):
        from repro.service.client import ServiceClient

        with ServiceClient(port=port) as client:
            client.shutdown()
        thread.join(10)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7733
        assert args.max_tenants == 64
        assert args.queue_depth == 16
        assert args.snapshot_dir is None

    def test_serve_rejects_bad_limits(self, capsys):
        assert main(["serve", "--max-tenants", "0"]) == 2
        assert "--max-tenants" in capsys.readouterr().err

    def test_serve_announces_bound_port(self, capsys):
        """The serve subcommand prints the OS-assigned port (--port 0)."""
        import re
        import threading

        from _async_utils import wait_until
        from repro.service.client import ServiceClient

        thread = threading.Thread(
            target=main, args=(["serve", "--port", "0"],), daemon=True)
        thread.start()
        seen = {"text": ""}

        def announced():
            seen["text"] += capsys.readouterr().out
            return re.search(r"listening on .*:(\d+)", seen["text"])

        wait_until(lambda: announced() is not None,
                   message="serve to announce its port")
        port = int(re.search(r"listening on .*:(\d+)",
                             seen["text"]).group(1))
        with ServiceClient(port=port) as client:
            assert client.ping()["pong"] is True
            client.shutdown()
        thread.join(10)
        wait_until(lambda: not thread.is_alive(),
                   message="serve thread to exit after shutdown")

    def test_client_defaults(self):
        args = build_parser().parse_args(["client", "g.txt"])
        assert args.tenant == "cli"
        assert args.algorithm == "adwise"
        assert args.batch_size == 512

    def test_client_streams_file_and_finalizes(self, graph_file, capsys):
        port, thread = self._boot()
        try:
            code = main(["client", graph_file, "--port", str(port),
                         "--partitions", "4", "--batch-size", "64",
                         "--latency-preference", "20"])
            assert code == 0
            out = capsys.readouterr().out
            assert "replication degree:" in out
            assert "finalized:" in out
        finally:
            self._shutdown(port, thread)

    def test_client_keep_open_leaves_tenant(self, graph_file, capsys):
        from repro.service.client import ServiceClient

        port, thread = self._boot()
        try:
            code = main(["client", graph_file, "--port", str(port),
                         "--algorithm", "hdrf", "--partitions", "4",
                         "--keep-open"])
            assert code == 0
            assert "finalized:" not in capsys.readouterr().out
            with ServiceClient(port=port) as probe:
                assert [t["tenant"] for t in probe.tenants()] == ["cli"]
        finally:
            self._shutdown(port, thread)

    def test_client_against_dead_daemon_fails_cleanly(self, graph_file,
                                                      capsys):
        import socket

        # Find a port with nothing listening on it.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        code = main(["client", graph_file, "--port", str(free_port)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
