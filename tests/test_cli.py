"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import barabasi_albert_graph
from repro.graph.io import write_graph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_graph(path, barabasi_albert_graph(120, 3, seed=1))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "g.txt"])
        assert args.algorithm == "adwise"
        assert args.partitions == 32
        assert args.latency_preference is None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["partition", "g.txt", "--algorithm", "magic"])


class TestPartitionCommand:
    @pytest.mark.parametrize("algorithm",
                             ["hash", "grid", "dbh", "hdrf", "greedy",
                              "adwise"])
    def test_each_algorithm_runs(self, graph_file, capsys, algorithm):
        code = main(["partition", graph_file, "--algorithm", algorithm,
                     "--partitions", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "replication degree:" in out
        assert "imbalance:" in out

    def test_adwise_latency_preference(self, graph_file, capsys):
        code = main(["partition", graph_file, "--latency-preference", "20",
                     "--partitions", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max_window" in out

    def test_no_clustering_flag(self, graph_file, capsys):
        code = main(["partition", graph_file, "--no-clustering",
                     "--partitions", "4"])
        assert code == 0

    def test_output_file_written(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "assignments.txt"
        code = main(["partition", graph_file, "--partitions", "4",
                     "--output", str(out_path)])
        assert code == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            u, v, p = line.split()
            assert 0 <= int(p) < 4

    def test_wall_clock_mode(self, graph_file, capsys):
        code = main(["partition", graph_file, "--wall-clock",
                     "--partitions", "4", "--algorithm", "hdrf"])
        assert code == 0
        assert "(wall)" in capsys.readouterr().out


class TestParallelPartition:
    def test_workers_backends_identical_output(self, graph_file, tmp_path,
                                               capsys):
        outputs = {}
        for backend in ("process", "simulated"):
            out = tmp_path / f"{backend}.txt"
            code = main(["partition", graph_file, "--algorithm", "hdrf",
                         "--partitions", "8", "--workers", "4",
                         "--backend", backend, "--output", str(out)])
            assert code == 0
            assert f"backend:            {backend}" \
                in capsys.readouterr().out
            outputs[backend] = out.read_text()
        assert outputs["process"] == outputs["simulated"]

    def test_spread_flag_passed_through(self, graph_file, capsys):
        code = main(["partition", graph_file, "--algorithm", "dbh",
                     "--partitions", "8", "--workers", "2",
                     "--backend", "simulated", "--spread", "8"])
        assert code == 0
        assert "spread 8" in capsys.readouterr().out

    def test_parallel_flags_without_workers_rejected(self, graph_file,
                                                     capsys):
        for flags in (["--spread", "4"], ["--backend", "simulated"]):
            code = main(["partition", graph_file, "--algorithm", "hdrf",
                         "--partitions", "8"] + flags)
            assert code == 2
            assert "--workers" in capsys.readouterr().err

    def test_invalid_worker_count_rejected(self, graph_file, capsys):
        code = main(["partition", graph_file, "--workers", "0"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_indivisible_default_spread_reported(self, graph_file, capsys):
        code = main(["partition", graph_file, "--algorithm", "hdrf",
                     "--partitions", "7", "--workers", "2",
                     "--backend", "simulated"])
        assert code == 2
        assert "spread" in capsys.readouterr().err


class TestStatsCommand:
    def test_prints_summary_row(self, graph_file, capsys):
        code = main(["stats", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "c-hat" in out
        assert "120" in out
