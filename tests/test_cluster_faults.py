"""Differential fault-tolerance layer: recovered ≡ unfaulted ≡ dense.

The cluster runtime's recovery invariant, held as a CI property: a run
that loses a machine mid-superstep — killed deterministically by a
:class:`FaultInjector` at any catalogued injection point, or by a real
``SIGKILL`` from outside — rolls back to its last checkpoint, replays,
and produces **bit-identical** states, aggregates and message counts to
the unfaulted run (which the existing differential layer already pins to
``Engine(mode="dense")``).  On top of that: checkpoint→resume round
trips, elastic rebalancing (idle and live), and failure redistribution
all preserve the same equivalence, and a Hypothesis sweep holds it for
random fault schedules.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    INJECTION_POINTS,
    CheckpointStore,
    ClusterEngine,
    ClusterError,
    FaultInjector,
    Kill,
    ProcessTransport,
    WorkerDied,
)
from repro.engine.algorithms import (
    ConnectedComponents,
    KCore,
    PageRank,
    SingleSourceShortestPaths,
)
from repro.engine.runtime import Engine
from repro.graph.generators import barabasi_albert_graph
from repro.graph.shard import ShardedGraph
from repro.graph.stream import shuffled
from repro.partitioning.hdrf import HDRFPartitioner
from test_cluster_runtime import (
    assert_cluster_matches,
    assert_sync_matches_prediction,
)

GRAPH = barabasi_albert_graph(n=160, m=3, seed=23)


def program_cases():
    return {
        "pagerank": (lambda: PageRank(iterations=9), True),
        "components": (lambda: ConnectedComponents(), False),
        "sssp": (lambda: SingleSourceShortestPaths(source=0), True),
        "kcore": (lambda: KCore(k=3), False),
    }


_SHARDED: dict = {}


def sharded(k: int) -> ShardedGraph:
    """HDRF sharding of the module graph into ``k`` shards (cached)."""
    if k not in _SHARDED:
        result = HDRFPartitioner(list(range(k))).partition_stream(
            shuffled(list(GRAPH.edges()), seed=3))
        _SHARDED[k] = ShardedGraph.from_assignments(
            result.assignments, partitions=range(k),
            vertices=GRAPH.vertices())
    return _SHARDED[k]


def assert_bit_identical(faulted, unfaulted):
    """The recovery invariant: *exact* equality, floats included."""
    assert faulted.states == unfaulted.states
    assert faulted.aggregates == unfaulted.aggregates
    assert faulted.messages_sent == unfaulted.messages_sent
    assert faulted.supersteps == unfaulted.supersteps
    assert faulted.converged == unfaulted.converged


class TestFaultInjectionDifferential:
    """Kill-a-worker at every injection point × program × shard count."""

    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("program_name", sorted(program_cases()))
    @pytest.mark.parametrize("point", INJECTION_POINTS)
    def test_recovered_equals_unfaulted_equals_dense(self, point,
                                                     program_name, k):
        factory, float_state = program_cases()[program_name]
        graph = sharded(k)
        unfaulted = ClusterEngine(graph).run(factory(), max_supersteps=60)
        # Superstep 0 exists for every program (kcore converges in one).
        injector = FaultInjector([Kill(superstep=0, point=point,
                                       machine=1)])
        engine = ClusterEngine(graph, checkpoint_every=2,
                               fault_injector=injector)
        recovered = engine.run(factory(), max_supersteps=60)
        assert_bit_identical(recovered, unfaulted)
        # The kill fired (mid-scatter only exists on syncing supersteps)
        # and every firing produced exactly one rollback.
        assert len(recovered.recoveries) == len(injector.fired)
        if point != "mid-scatter":
            assert len(recovered.recoveries) == 1
            assert recovered.recoveries[0].machine == 1
        # Close the triangle: the recovered run also matches the dense
        # single-process engine (same comparison the unfaulted layer uses).
        dense = Engine(GRAPH, engine.placement, mode="dense").run(
            factory(), max_supersteps=60)
        assert_cluster_matches(dense, recovered, float_state)

    def test_kill_at_superstep_zero(self):
        """The boundary-0 checkpoint makes even a first-superstep death
        recoverable."""
        graph = sharded(4)
        unfaulted = ClusterEngine(graph).run(ConnectedComponents(),
                                             max_supersteps=60)
        injector = FaultInjector([Kill(superstep=0, point="pre-gather",
                                       machine=0)])
        engine = ClusterEngine(graph, checkpoint_every=3,
                               fault_injector=injector)
        recovered = engine.run(ConnectedComponents(), max_supersteps=60)
        assert_bit_identical(recovered, unfaulted)
        assert recovered.recoveries[0].resumed_from == 0

    def test_repeated_kills_each_roll_back(self):
        graph = sharded(4)
        unfaulted = ClusterEngine(graph).run(PageRank(iterations=9),
                                             max_supersteps=60)
        injector = FaultInjector([
            Kill(superstep=1, point="pre-gather", machine=0),
            Kill(superstep=3, point="post-apply", machine=2),
            Kill(superstep=5, point="mid-scatter", machine=1),
        ])
        engine = ClusterEngine(graph, checkpoint_every=2,
                               fault_injector=injector)
        recovered = engine.run(PageRank(iterations=9), max_supersteps=60)
        assert_bit_identical(recovered, unfaulted)
        assert len(recovered.recoveries) == len(injector.fired) >= 2

    def test_seeded_random_schedule_is_reproducible(self):
        first = FaultInjector.random(seed=7, num_machines=4, kills=3)
        second = FaultInjector.random(seed=7, num_machines=4, kills=3)
        assert first.pending == second.pending

    def test_without_checkpointing_the_death_propagates(self):
        injector = FaultInjector([Kill(superstep=1, point="pre-gather",
                                       machine=1)])
        engine = ClusterEngine(sharded(4), fault_injector=injector)
        with pytest.raises(ClusterError):
            engine.run(PageRank(iterations=9), max_supersteps=60)

    def test_max_recoveries_gives_up(self):
        injector = FaultInjector([Kill(superstep=1, point="pre-gather",
                                       machine=1)])
        engine = ClusterEngine(sharded(4), checkpoint_every=2,
                               fault_injector=injector, max_recoveries=0)
        with pytest.raises(ClusterError, match="giving up"):
            engine.run(PageRank(iterations=9), max_supersteps=60)


class TestProcessFaults:
    """Real worker OS processes: injected and external SIGKILLs."""

    @pytest.mark.parametrize("program_name", ["pagerank", "components"])
    def test_injected_sigkill_recovers(self, program_name):
        factory, _ = program_cases()[program_name]
        graph = sharded(4)
        unfaulted = ClusterEngine(graph).run(factory(), max_supersteps=60)
        injector = FaultInjector([Kill(superstep=1, point="pre-gather",
                                       machine=1)])
        engine = ClusterEngine(graph, backend="process", num_workers=2,
                               checkpoint_every=2, fault_injector=injector,
                               heartbeat_timeout=30.0)
        recovered = engine.run(factory(), max_supersteps=60)
        assert len(recovered.recoveries) == 1
        assert recovered.recoveries[0].machine == 1
        assert_bit_identical(recovered, unfaulted)

    def test_external_sigkill_recovers(self):
        """A worker SIGKILLed from *outside* (no injector cooperation)
        is detected and rolled back mid-run."""
        graph = sharded(4)
        factory = lambda: PageRank(iterations=60)  # noqa: E731
        unfaulted = ClusterEngine(graph).run(factory(), max_supersteps=80)
        engine = ClusterEngine(graph, backend="process", num_workers=2,
                               checkpoint_every=4, heartbeat_timeout=30.0)
        holder = {}

        def run():
            holder["report"] = engine.run(factory(), max_supersteps=80)

        thread = threading.Thread(target=run)
        thread.start()
        killed = self._kill_first_worker(thread)
        thread.join(120)
        assert killed is not None, "never saw a worker process to kill"
        assert "report" in holder, "run did not finish after the kill"
        report = holder["report"]
        assert len(report.recoveries) >= 1
        assert_bit_identical(report, unfaulted)

    @staticmethod
    def _kill_first_worker(thread, timeout=15.0):
        """SIGKILL the first forked worker (any child of this process
        that isn't multiprocessing's resource tracker)."""
        task_dir = f"/proc/{os.getpid()}/task"
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline and thread.is_alive():
            for tid in os.listdir(task_dir):
                try:
                    with open(f"{task_dir}/{tid}/children") as handle:
                        children = handle.read().split()
                except OSError:
                    continue
                for pid in children:
                    try:
                        with open(f"/proc/{pid}/cmdline", "rb") as handle:
                            cmdline = handle.read().decode(errors="replace")
                    except OSError:
                        continue
                    if "resource_tracker" in cmdline:
                        continue
                    try:
                        os.kill(int(pid), signal.SIGKILL)
                    except OSError:
                        continue
                    return int(pid)
            time.sleep(0.002)
        return None

    def test_transport_sigkill_raises_not_hangs(self):
        """Regression for the silent-hang: a SIGKILLed worker must raise
        :class:`WorkerDied` naming the machine, well inside the timeout."""
        transport = ProcessTransport(sharded(4), ConnectedComponents(),
                                     {0: 0, 1: 0, 2: 1, 3: 1}, timeout=30.0)
        try:
            transport.compute_owned()
            os.kill(transport._procs[1].pid, signal.SIGKILL)
            started = time.monotonic()
            with pytest.raises(WorkerDied) as excinfo:
                transport.step(0)
            assert time.monotonic() - started < 10.0
            assert excinfo.value.machine == 1
        finally:
            transport.close()

    def test_engine_without_recovery_raises_cluster_error(self):
        """No checkpointing → the death is an error, never a hang."""
        injector = FaultInjector([Kill(superstep=0, point="pre-gather",
                                       machine=0)])
        engine = ClusterEngine(sharded(4), backend="process",
                               num_workers=2, fault_injector=injector,
                               heartbeat_timeout=30.0)
        with pytest.raises(ClusterError):
            engine.run(ConnectedComponents(), max_supersteps=60)

    def test_wedged_worker_times_out(self):
        """A worker that stays alive but never replies trips the
        heartbeat timeout instead of blocking forever."""
        transport = ProcessTransport(sharded(2), ConnectedComponents(),
                                     {0: 0, 1: 1}, timeout=0.3)
        try:
            os.kill(transport._procs[1].pid, signal.SIGSTOP)
            with pytest.raises(WorkerDied) as excinfo:
                transport.compute_owned()
            assert excinfo.value.machine == 1
            assert "no reply" in excinfo.value.reason
        finally:
            os.kill(transport._procs[1].pid, signal.SIGCONT)
            transport.close()


class TestCheckpointResume:
    """Disk checkpoints: interrupted runs restart at the last boundary."""

    @pytest.mark.parametrize("backend,workers", [("serial", None),
                                                 ("process", 2)])
    def test_round_trip_matches_uninterrupted(self, tmp_path, backend,
                                              workers):
        graph = sharded(4)
        factory = lambda: PageRank(iterations=9)  # noqa: E731
        # Same machine layout as the interrupted run, so the simulated
        # cost trace is comparable too (2 workers = 2 machines).
        full = ClusterEngine(graph, num_machines=workers).run(
            factory(), max_supersteps=60)
        directory = str(tmp_path / "ckpt")
        interrupted = ClusterEngine(
            graph, backend=backend, num_workers=workers,
            checkpoint_every=2, checkpoint_dir=directory)
        partial = interrupted.run(factory(), max_supersteps=3)
        assert partial.supersteps == 3
        resumed = ClusterEngine.resume(directory, max_supersteps=60)
        assert_bit_identical(resumed, full)
        assert resumed.latency_ms == pytest.approx(full.latency_ms)

    def test_resume_onto_a_different_layout(self, tmp_path):
        """Checkpoints are keyed by partition: a serial run resumes on
        the process backend with a different machine count."""
        graph = sharded(4)
        factory = lambda: ConnectedComponents()  # noqa: E731
        full = ClusterEngine(graph).run(factory(), max_supersteps=60)
        directory = str(tmp_path / "ckpt")
        ClusterEngine(graph, checkpoint_every=2,
                      checkpoint_dir=directory).run(factory(),
                                                    max_supersteps=3)
        resumed = ClusterEngine.resume(directory, backend="process",
                                       num_workers=2, max_supersteps=60)
        assert resumed.backend == "process"
        assert resumed.states == full.states
        assert resumed.aggregates == full.aggregates
        assert resumed.messages_sent == full.messages_sent

    def test_completed_run_resumes_to_the_same_report(self, tmp_path):
        graph = sharded(2)
        directory = str(tmp_path / "ckpt")
        first = ClusterEngine(graph, checkpoint_every=2,
                              checkpoint_dir=directory).run(
            ConnectedComponents(), max_supersteps=60)
        resumed = ClusterEngine.resume(directory)
        assert_bit_identical(resumed, first)

    def test_resume_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ClusterEngine.resume(str(tmp_path / "nope"))

    def test_resume_without_checkpoints(self, tmp_path):
        graph = sharded(2)
        directory = str(tmp_path / "ckpt")
        ClusterEngine(graph, checkpoint_every=2,
                      checkpoint_dir=directory).run(ConnectedComponents(),
                                                    max_supersteps=60)
        store = CheckpointStore(directory)
        for cursor in store.cursors():
            os.remove(store._path(cursor))
        with pytest.raises(ClusterError, match="no checkpoint"):
            ClusterEngine.resume(directory)

    def test_resume_rejects_mismatched_graph(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        ClusterEngine(sharded(2), checkpoint_every=2,
                      checkpoint_dir=directory).run(ConnectedComponents(),
                                                    max_supersteps=60)
        store = CheckpointStore(directory)
        topology = store.read_topology()
        topology["sharded"] = sharded(4)  # a different sharding
        store.write_topology(topology)
        with pytest.raises(ClusterError, match="does not match"):
            ClusterEngine.resume(directory)

    def test_checkpoint_dir_requires_checkpoint_every(self, tmp_path):
        with pytest.raises(ValueError):
            ClusterEngine(sharded(2), checkpoint_dir=str(tmp_path))


class TestElasticity:
    """Rebalance (idle + live migration) and failure redistribution."""

    def test_idle_rebalance_parity_and_prediction(self):
        graph = sharded(4)
        engine = ClusterEngine(graph)
        before = engine.run(PageRank(iterations=9), max_supersteps=60)
        engine.rebalance({0: 0, 1: 0, 2: 1, 3: 1})
        assert engine.num_machines == 2
        after = engine.run(PageRank(iterations=9), max_supersteps=60)
        assert after.states == before.states
        assert after.aggregates == before.aggregates
        assert after.messages_sent == before.messages_sent
        assert_sync_matches_prediction(after, engine.placement)

    @pytest.mark.parametrize("backend,workers", [("serial", None),
                                                 ("process", 4)])
    def test_live_rebalance_preserves_states(self, backend, workers):
        graph = sharded(4)
        factory = lambda: PageRank(iterations=9)  # noqa: E731
        baseline = ClusterEngine(graph).run(factory(), max_supersteps=60)
        engine = ClusterEngine(graph, backend=backend, num_workers=workers)
        report = engine.run(factory(), max_supersteps=60,
                            rebalance_at={2: {0: 0, 1: 0, 2: 1, 3: 1}})
        assert engine.num_machines == 2
        assert report.states == baseline.states
        assert report.aggregates == baseline.aggregates
        assert report.messages_sent == baseline.messages_sent

    def test_live_rebalance_composes_with_recovery(self):
        graph = sharded(4)
        factory = lambda: PageRank(iterations=9)  # noqa: E731
        baseline = ClusterEngine(graph).run(factory(), max_supersteps=60)
        injector = FaultInjector([Kill(superstep=4, point="pre-gather",
                                       machine=1)])
        engine = ClusterEngine(graph, checkpoint_every=2,
                               fault_injector=injector)
        report = engine.run(factory(), max_supersteps=60,
                            rebalance_at={2: {0: 0, 1: 0, 2: 1, 3: 1}})
        assert report.states == baseline.states
        assert report.aggregates == baseline.aggregates
        assert len(report.recoveries) == 1

    def test_rebalance_rejects_incomplete_map(self):
        engine = ClusterEngine(sharded(4))
        with pytest.raises(ValueError, match="without a machine"):
            engine.rebalance({0: 0, 1: 0})

    def test_redistribute_shrinks_the_cluster(self):
        graph = sharded(4)
        factory = lambda: PageRank(iterations=9)  # noqa: E731
        baseline = ClusterEngine(graph).run(factory(), max_supersteps=60)
        injector = FaultInjector([Kill(superstep=2, point="mid-scatter",
                                       machine=2)])
        engine = ClusterEngine(graph, backend="process", num_workers=4,
                               checkpoint_every=2, fault_injector=injector,
                               on_failure="redistribute",
                               heartbeat_timeout=30.0)
        report = engine.run(factory(), max_supersteps=60)
        assert report.states == baseline.states
        assert report.aggregates == baseline.aggregates
        assert report.messages_sent == baseline.messages_sent
        assert engine.num_machines == 3
        assert report.recoveries[0].machine == 2


# -- Hypothesis: random fault schedules never lose or duplicate state --

_PROPERTY_SHARDED = None
_PROPERTY_REFERENCE = None


def _property_fixture():
    global _PROPERTY_SHARDED, _PROPERTY_REFERENCE
    if _PROPERTY_SHARDED is None:
        graph = barabasi_albert_graph(n=60, m=2, seed=41)
        result = HDRFPartitioner(list(range(4))).partition_stream(
            shuffled(list(graph.edges()), seed=3))
        _PROPERTY_SHARDED = ShardedGraph.from_assignments(
            result.assignments, partitions=range(4),
            vertices=graph.vertices())
        _PROPERTY_REFERENCE = ClusterEngine(_PROPERTY_SHARDED).run(
            ConnectedComponents(), max_supersteps=40)
    return _PROPERTY_SHARDED, _PROPERTY_REFERENCE


@settings(deadline=None, max_examples=20)
@given(schedule=st.lists(
    st.tuples(st.integers(0, 6),
              st.sampled_from(list(INJECTION_POINTS)),
              st.integers(0, 3)),
    max_size=3),
    every=st.integers(1, 3))
def test_random_fault_schedules_never_lose_state(schedule, every):
    """Any kill schedule: every vertex converges to exactly the
    unfaulted value — no update lost to rollback, none applied twice.
    (On failure Hypothesis shrinks to a minimal schedule.)"""
    graph, reference = _property_fixture()
    kills = [Kill(superstep=s, point=p, machine=m)
             for s, p, m in schedule]
    engine = ClusterEngine(graph, checkpoint_every=every,
                           fault_injector=FaultInjector(kills),
                           max_recoveries=16)
    report = engine.run(ConnectedComponents(), max_supersteps=40)
    assert report.states == reference.states
    assert report.aggregates == reference.aggregates
    assert report.messages_sent == reference.messages_sent
    assert len(report.recoveries) == len(engine.fault_injector.fired)
