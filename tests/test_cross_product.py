"""Cross-product stress matrix: every partitioner × graph family × k.

A broad sweep asserting only universal invariants (via the validator),
catching interactions that focused unit tests miss — e.g. a partitioner
that breaks on dense cliques, or spotlight spreads that leave partitions
uncovered on a particular family.
"""

import pytest

from repro.graph.generators import (
    barabasi_albert_graph,
    community_powerlaw_graph,
    rmat_graph,
    watts_strogatz_graph,
    web_like_graph,
)
from repro.graph.stream import InMemoryEdgeStream, locally_shuffled, shuffled
from repro.core.adwise import AdwisePartitioner
from repro.partitioning.dbh import DBHPartitioner
from repro.partitioning.greedy import GreedyPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.hashing import HashPartitioner
from repro.partitioning.hdrf import HDRFPartitioner
from repro.partitioning.onedim import OneDimPartitioner, TwoDimPartitioner
from repro.partitioning.powerlyra import PowerLyraPartitioner
from repro.partitioning.validate import validate_result

GRAPHS = {
    "powerlaw": lambda: barabasi_albert_graph(120, 3, seed=5),
    "smallworld": lambda: watts_strogatz_graph(120, 6, 0.2, seed=5),
    "rmat": lambda: rmat_graph(7, 6, seed=5),
    "community": lambda: community_powerlaw_graph(5, 20, 0.5, 2, seed=5),
    "web": lambda: web_like_graph(8, 8, seed=5),
}

PARTITIONERS = {
    "hash": HashPartitioner,
    "grid": GridPartitioner,
    "1d": OneDimPartitioner,
    "2d": TwoDimPartitioner,
    "dbh": DBHPartitioner,
    "powerlyra": PowerLyraPartitioner,
    "greedy": GreedyPartitioner,
    "hdrf": HDRFPartitioner,
}


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("partitioner_name", sorted(PARTITIONERS))
@pytest.mark.parametrize("k", [1, 3, 8])
def test_partitioner_graph_matrix(graph_name, partitioner_name, k):
    graph = GRAPHS[graph_name]()
    stream = shuffled(graph.edges(), seed=9)
    partitioner = PARTITIONERS[partitioner_name](range(k))
    result = partitioner.partition_stream(stream)
    report = validate_result(result, expected_edges=len(stream))
    assert report.ok, report.errors
    assert 1.0 <= result.replication_degree <= k


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("order", ["adjacency", "local", "shuffled"])
def test_adwise_across_families_and_orders(graph_name, order):
    graph = GRAPHS[graph_name]()
    edges = graph.edge_list()
    if order == "adjacency":
        stream = InMemoryEdgeStream(edges)
    elif order == "local":
        stream = locally_shuffled(edges, buffer_size=64, seed=9)
    else:
        stream = shuffled(edges, seed=9)
    partitioner = AdwisePartitioner(range(6), fixed_window=8)
    result = partitioner.partition_stream(stream)
    report = validate_result(result, expected_edges=len(stream))
    assert report.ok, report.errors


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_quality_ordering_holds_everywhere(graph_name):
    """HDRF must never lose to Hash on replication — on any family."""
    graph = GRAPHS[graph_name]()
    stream = shuffled(graph.edges(), seed=9)
    hdrf = HDRFPartitioner(range(8)).partition_stream(stream)
    hashed = HashPartitioner(range(8)).partition_stream(stream)
    assert hdrf.replication_degree <= hashed.replication_degree
