"""Tests for the engine substrate: placement, cost model, runtime."""

import pytest

from repro.graph.graph import Edge, Graph
from repro.engine.cost import CostModel, cost_model_for
from repro.engine.placement import Placement
from repro.engine.runtime import Engine
from repro.engine.vertex_program import VertexProgram


@pytest.fixture
def simple_assignments():
    return {
        Edge(0, 1): 0,
        Edge(1, 2): 0,
        Edge(2, 3): 1,
        Edge(3, 4): 1,
    }


@pytest.fixture
def simple_placement(simple_assignments):
    return Placement(simple_assignments, partitions=[0, 1], num_machines=2)


class TestPlacement:
    def test_machine_map_contiguous(self):
        mapping = Placement.contiguous_machine_map(list(range(8)), 2)
        assert mapping == {0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 1, 7: 1}

    def test_machine_map_uneven(self):
        mapping = Placement.contiguous_machine_map(list(range(5)), 2)
        assert list(mapping.values()).count(0) == 3
        assert list(mapping.values()).count(1) == 2

    def test_edges_per_machine(self, simple_placement):
        assert simple_placement.edges_on_machine(0) == 2
        assert simple_placement.edges_on_machine(1) == 2

    def test_vertex_span(self, simple_placement):
        assert simple_placement.span(2) == 2  # on partitions 0 and 1
        assert simple_placement.span(0) == 1

    def test_sync_messages(self, simple_placement):
        stats = simple_placement.stats()
        # Only vertex 2 spans two machines: 2 messages on each side.
        assert stats.sync_messages_per_machine == {0: 2, 1: 2}

    def test_replication_degree_stat(self, simple_placement):
        stats = simple_placement.stats()
        # R: v0=1, v1=1, v2=2, v3=1, v4=1 -> 6/5
        assert stats.replication_degree == pytest.approx(6 / 5)

    def test_unknown_partition_rejected(self):
        with pytest.raises(ValueError):
            Placement({Edge(0, 1): 9}, partitions=[0, 1], num_machines=1)

    def test_invalid_machine_count(self):
        with pytest.raises(ValueError):
            Placement({}, partitions=[0], num_machines=0)


class TestCostModel:
    def test_superstep_cost_positive(self, simple_placement):
        cost = CostModel().superstep_cost(simple_placement.stats())
        assert cost.total_ms > 0.0

    def test_zero_activity_only_overhead(self, simple_placement):
        model = CostModel(superstep_overhead_ms=1.0)
        cost = model.superstep_cost(simple_placement.stats(),
                                    active_fraction=0.0)
        assert cost.total_ms == pytest.approx(1.0)

    def test_invalid_active_fraction(self, simple_placement):
        with pytest.raises(ValueError):
            CostModel().superstep_cost(simple_placement.stats(), 1.5)

    def test_more_replication_costs_more(self):
        """The paper's causal chain: replication -> sync -> latency."""
        local = Placement({Edge(0, 1): 0, Edge(1, 2): 0},
                          partitions=[0, 1], num_machines=2)
        cut = Placement({Edge(0, 1): 0, Edge(1, 2): 1},
                        partitions=[0, 1], num_machines=2)
        model = CostModel(superstep_overhead_ms=0.0)
        assert (model.superstep_cost(cut.stats()).total_ms
                > model.superstep_cost(local.stats()).total_ms)

    def test_imbalance_stretches_latency(self):
        balanced = Placement({Edge(0, 1): 0, Edge(2, 3): 1},
                             partitions=[0, 1], num_machines=2)
        skewed = Placement({Edge(0, 1): 0, Edge(2, 3): 0},
                           partitions=[0, 1], num_machines=2)
        model = CostModel(superstep_overhead_ms=0.0)
        assert (model.superstep_cost(skewed.stats()).total_ms
                > model.superstep_cost(balanced.stats()).total_ms)

    def test_iterations_cost_linear(self, simple_placement):
        model = CostModel()
        one = model.iterations_cost_ms(simple_placement, 1)
        ten = model.iterations_cost_ms(simple_placement, 10)
        assert ten == pytest.approx(10 * one)

    def test_workload_presets(self):
        pagerank = cost_model_for("pagerank")
        si = cost_model_for("subgraph_isomorphism")
        assert si.comm_weight > pagerank.comm_weight

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            cost_model_for("sorting")

    def test_preset_override(self):
        model = cost_model_for("pagerank", comm_weight=9.0)
        assert model.comm_weight == 9.0


class _EchoOnce(VertexProgram):
    """Test program: every vertex messages its neighbors once, then halts."""

    name = "echo"

    def initial_state(self, vertex, degree):
        return 0

    def compute(self, vertex, state, messages, neighbors, ctx):
        if ctx.superstep == 0:
            ctx.send_all(neighbors, vertex)
        ctx.vote_halt()
        return state + len(messages)


class TestEngine:
    def test_runs_and_converges(self, triangle, simple_placement):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        engine = Engine(graph, simple_placement)
        report = engine.run(_EchoOnce(), max_supersteps=10)
        assert report.converged
        assert report.supersteps == 2
        # Every vertex received one message per neighbor.
        assert report.states[1] == 2
        assert report.states[0] == 1

    def test_message_to_unknown_vertex_raises(self, simple_placement):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])

        class Bad(_EchoOnce):
            def compute(self, vertex, state, messages, neighbors, ctx):
                ctx.send(999, "boom")
                ctx.vote_halt()
                return state

        with pytest.raises(KeyError):
            Engine(graph, simple_placement).run(Bad())

    def test_latency_accumulates_per_superstep(self, simple_placement):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        engine = Engine(graph, simple_placement)
        report = engine.run(_EchoOnce(), max_supersteps=10)
        assert report.latency_ms == pytest.approx(
            sum(c.total_ms for c in report.superstep_costs))

    def test_max_supersteps_cap(self, simple_placement):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])

        class Chatter(VertexProgram):
            name = "chatter"

            def initial_state(self, vertex, degree):
                return 0

            def compute(self, vertex, state, messages, neighbors, ctx):
                ctx.send_all(neighbors, 1)
                return state

        report = Engine(graph, simple_placement).run(Chatter(),
                                                     max_supersteps=5)
        assert report.supersteps == 5
        assert not report.converged

    def test_stationary_shortcut_matches_model(self, simple_placement):
        graph = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        engine = Engine(graph, simple_placement)
        expected = engine.cost_model.iterations_cost_ms(simple_placement, 7)
        assert engine.stationary_latency_ms(7) == pytest.approx(expected)

    def test_invalid_max_supersteps(self, simple_placement):
        graph = Graph([(0, 1)])
        graph.add_vertex(2)
        graph.add_vertex(3)
        graph.add_vertex(4)
        with pytest.raises(ValueError):
            Engine(graph, simple_placement).run(_EchoOnce(), max_supersteps=0)


class TestLocalityDiscount:
    """Same-machine replica sync must be cheaper than cross-machine."""

    def test_local_mirror_cheaper_than_remote(self):
        from repro.engine.cost import CostModel
        from repro.engine.placement import Placement
        from repro.graph.graph import Edge

        # Vertex 1 is replicated on two partitions either co-located on
        # one machine or split across two.
        local = Placement({Edge(0, 1): 0, Edge(1, 2): 1},
                          partitions=[0, 1], num_machines=2,
                          machine_of_partition={0: 0, 1: 0})
        remote = Placement({Edge(0, 1): 0, Edge(1, 2): 1},
                           partitions=[0, 1], num_machines=2,
                           machine_of_partition={0: 0, 1: 1})
        model = CostModel(superstep_overhead_ms=0.0, edge_compute_ms=0.0)
        local_cost = model.superstep_cost(local.stats()).total_ms
        remote_cost = model.superstep_cost(remote.stats()).total_ms
        assert local_cost < remote_cost
        assert local_cost > 0.0  # local sync is cheaper, not free

    def test_discount_factor_scales_local_cost(self):
        from repro.engine.cost import CostModel
        from repro.engine.placement import Placement
        from repro.graph.graph import Edge

        placement = Placement({Edge(0, 1): 0, Edge(1, 2): 1},
                              partitions=[0, 1], num_machines=1)
        cheap = CostModel(superstep_overhead_ms=0.0, edge_compute_ms=0.0,
                          local_message_factor=0.1)
        dear = CostModel(superstep_overhead_ms=0.0, edge_compute_ms=0.0,
                         local_message_factor=0.9)
        assert (cheap.superstep_cost(placement.stats()).total_ms
                < dear.superstep_cost(placement.stats()).total_ms)
